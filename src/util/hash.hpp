// Hashing utilities: a strong 64-bit mixer and pair/tuple combining, used by
// the Map-Reduce distinct() stage and the flow-table keys.
#pragma once

#include <cstdint>
#include <functional>

namespace csb {

/// Stafford's Mix13 finalizer — a bijective 64-bit mixer.
inline constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Order-sensitive combination of two 64-bit hashes.
inline constexpr std::uint64_t hash_combine(std::uint64_t a,
                                            std::uint64_t b) noexcept {
  return mix64(a + 0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2));
}

/// Hash for (u, v) endpoint pairs, e.g. edge identity in distinct().
inline constexpr std::uint64_t hash_pair(std::uint64_t u,
                                         std::uint64_t v) noexcept {
  return hash_combine(mix64(u), mix64(v));
}

}  // namespace csb
