// Allocation helpers.
//
// DefaultInitAllocator makes std::vector<T>::resize default-initialize
// elements instead of value-initializing them — for trivial T that means
// *no* O(n) memset. The property generators allocate multi-hundred-MB
// columns whose every row is immediately overwritten by the sampling
// stage; value-initialization would be a serial full-column write for
// nothing.
#pragma once

#include <memory>
#include <utility>

namespace csb {

template <typename T, typename A = std::allocator<T>>
class DefaultInitAllocator : public A {
  using traits = std::allocator_traits<A>;

 public:
  template <typename U>
  struct rebind {
    using other =
        DefaultInitAllocator<U, typename traits::template rebind_alloc<U>>;
  };

  using A::A;

  /// Default-initialize (indeterminate value for trivial T) instead of
  /// value-initialize.
  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }

  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    traits::construct(static_cast<A&>(*this), ptr,
                      std::forward<Args>(args)...);
  }
};

}  // namespace csb
