#include "util/parallel.hpp"

#include <algorithm>
#include <future>

namespace csb {

std::vector<ChunkRange> make_chunks(std::size_t begin, std::size_t end,
                                    std::size_t workers, std::size_t grain) {
  std::vector<ChunkRange> chunks;
  if (begin >= end) return chunks;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(1, grain);
  workers = std::max<std::size_t>(1, workers);
  // Aim for ~4 chunks per worker for load balance, floor at `grain`.
  const std::size_t target = std::max(grain, n / (workers * 4) + 1);
  std::size_t at = begin;
  std::size_t index = 0;
  while (at < end) {
    const std::size_t stop = std::min(end, at + target);
    chunks.push_back({at, stop, index++});
    at = stop;
  }
  return chunks;
}

std::vector<ChunkRange> make_fixed_chunks(std::size_t begin, std::size_t end,
                                          std::size_t chunk_size) {
  std::vector<ChunkRange> chunks;
  if (begin >= end) return chunks;
  chunk_size = std::max<std::size_t>(1, chunk_size);
  std::size_t at = begin;
  std::size_t index = 0;
  while (at < end) {
    const std::size_t stop = std::min(end, at + chunk_size);
    chunks.push_back({at, stop, index++});
    at = stop;
  }
  return chunks;
}

namespace {

/// Runs every chunk on the pool and waits for ALL of them before rethrowing
/// the first exception. Bailing out on the first failed future would unwind
/// the caller's frame while later chunks still run against its references.
void run_chunks_on_pool(ThreadPool& pool, const std::vector<ChunkRange>& chunks,
                        const std::function<void(const ChunkRange&)>& body) {
  if (chunks.empty()) return;
  if (chunks.size() == 1) {
    body(chunks.front());
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    pending.push_back(pool.submit([&body, chunk] { body(chunk); }));
  }
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain,
                         const std::function<void(const ChunkRange&)>& body) {
  run_chunks_on_pool(pool, make_chunks(begin, end, pool.size(), grain), body);
}

void parallel_for_fixed_chunks(
    ThreadPool* pool, std::size_t begin, std::size_t end,
    std::size_t chunk_size, const std::function<void(const ChunkRange&)>& body) {
  const auto chunks = make_fixed_chunks(begin, end, chunk_size);
  if (pool == nullptr) {
    for (const auto& chunk : chunks) body(chunk);
    return;
  }
  run_chunks_on_pool(*pool, chunks, body);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, begin, end, grain, [&body](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) body(i);
  });
}

void parallel_tasks(ThreadPool* pool,
                    const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (pool == nullptr || tasks.size() == 1) {
    for (const auto& task : tasks) task();
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(tasks.size());
  for (const auto& task : tasks) pending.push_back(pool->submit(task));
  // Wait for ALL tasks before rethrowing the first error in task-index
  // order: bailing early would unwind caller state still referenced by
  // running tasks, and completion-order rethrow would make the reported
  // error depend on scheduling.
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace csb
