#include "util/parallel.hpp"

#include <algorithm>
#include <future>

namespace csb {

std::vector<ChunkRange> make_chunks(std::size_t begin, std::size_t end,
                                    std::size_t workers, std::size_t grain) {
  std::vector<ChunkRange> chunks;
  if (begin >= end) return chunks;
  const std::size_t n = end - begin;
  grain = std::max<std::size_t>(1, grain);
  workers = std::max<std::size_t>(1, workers);
  // Aim for ~4 chunks per worker for load balance, floor at `grain`.
  const std::size_t target = std::max(grain, n / (workers * 4) + 1);
  std::size_t at = begin;
  std::size_t index = 0;
  while (at < end) {
    const std::size_t stop = std::min(end, at + target);
    chunks.push_back({at, stop, index++});
    at = stop;
  }
  return chunks;
}

void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain,
                         const std::function<void(const ChunkRange&)>& body) {
  const auto chunks = make_chunks(begin, end, pool.size(), grain);
  if (chunks.empty()) return;
  if (chunks.size() == 1) {
    body(chunks.front());
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    pending.push_back(pool.submit([&body, chunk] { body(chunk); }));
  }
  for (auto& f : pending) f.get();
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, begin, end, grain, [&body](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) body(i);
  });
}

}  // namespace csb
