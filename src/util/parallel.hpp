// Data-parallel helpers layered on ThreadPool.
//
// parallel_for splits [begin, end) into chunks of at least `grain` indices
// and runs them on the pool; the calling thread blocks until every chunk
// finishes. Exceptions from any chunk propagate to the caller (first one
// wins). Chunk boundaries are deterministic for a given (range, workers,
// grain), which keeps per-chunk RNG forking reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"

namespace csb {

struct ChunkRange {
  std::size_t begin;
  std::size_t end;
  std::size_t chunk_index;
};

/// Computes the deterministic chunk decomposition parallel_for uses.
std::vector<ChunkRange> make_chunks(std::size_t begin, std::size_t end,
                                    std::size_t workers, std::size_t grain);

/// Thread-count-independent decomposition: every chunk spans exactly
/// `chunk_size` indices (the last may be short). Use where per-chunk
/// partial results are reduced in chunk-index order, so the combined
/// result is bit-identical no matter how many workers ran the chunks
/// (KronFit's refresh/gradient passes rely on this).
std::vector<ChunkRange> make_fixed_chunks(std::size_t begin, std::size_t end,
                                          std::size_t chunk_size);

/// Runs body(chunk) for every fixed-size chunk. A null `pool` executes the
/// chunks inline, in chunk-index order, over identical boundaries — the
/// serial and parallel paths are the same decomposition.
void parallel_for_fixed_chunks(
    ThreadPool* pool, std::size_t begin, std::size_t end,
    std::size_t chunk_size, const std::function<void(const ChunkRange&)>& body);

/// Runs body(chunk) for every chunk on `pool`; blocks until completion.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         std::size_t grain,
                         const std::function<void(const ChunkRange&)>& body);

/// Element-wise convenience wrapper: body(index) for index in [begin, end).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t)>& body);

/// Runs a fixed set of independent tasks. A null `pool` executes them
/// inline in task-index order; otherwise every task is submitted to the
/// pool and the caller blocks until ALL of them finish, then rethrows the
/// first exception in task-index order (not completion order), so error
/// reporting is deterministic at any pool size. The store's parallel
/// finish/verify pipeline fans shard scans and range merges through this.
void parallel_tasks(ThreadPool* pool,
                    const std::vector<std::function<void()>>& tasks);

}  // namespace csb
