// Deterministic, fork-able pseudo-random number generation.
//
// All stochastic components in csb (generators, traffic models, samplers)
// draw from Xoshiro256** seeded through SplitMix64, the combination
// recommended by the xoshiro authors. The generator satisfies
// std::uniform_random_bit_generator, so it composes with <random>
// distributions, but the hot paths (uniform integers and doubles) are
// provided directly with branch-light implementations.
//
// Parallel use: Rng::fork(stream_id) derives an independent stream for each
// worker, so a (seed, stream) pair fully determines the sequence regardless
// of thread scheduling. Never share one Rng between threads.
#pragma once

#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace csb {

/// SplitMix64 step: used to expand a single 64-bit seed into generator state.
inline constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** 1.0 — fast, high-quality, 256-bit state, jump-free forking
/// via re-seeding with a derived key.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    CSB_ASSERT(bound > 0);
    // 128-bit multiply-shift; the rejection loop runs ~once on average.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
    CSB_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform_double() < p; }

  /// Derive an independent stream; (seed, stream_id) identifies it uniquely.
  Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t key = state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    Rng child(0);
    std::uint64_t sm = key;
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Counter-mode stream: derives an independent Rng from (seed, counter)
/// alone, so any worker can reconstruct element `counter`'s stream without
/// shared state or a parent Rng to fork from. This is the primitive behind
/// the fast samplers' skip-ahead resolution, where edge i must re-derive
/// edge j's draws (j < i) in O(1).
inline Rng counter_rng(std::uint64_t seed, std::uint64_t counter) noexcept {
  std::uint64_t a = seed;
  std::uint64_t b = counter ^ 0x1905'27bb'4e5e'c9d1ULL;
  return Rng(splitmix64(a) ^ splitmix64(b));
}

/// Fixed-point Bernoulli threshold for bernoulli_lanes: round(p * 2^64)
/// computed through the 53-bit mantissa so the conversion is exact and
/// platform-independent for p in [0, 1].
inline constexpr std::uint64_t bernoulli_threshold(double p) noexcept {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return ~0ULL;
  return static_cast<std::uint64_t>(p * 0x1.0p53) << 11;
}

/// 64 iid Bernoulli(p) trials in one call, bit i of the result = lane i's
/// outcome, where p = threshold / 2^64 (see bernoulli_threshold).
///
/// Each lane conceptually compares a uniform 64-bit value against the
/// threshold, but the uniform bits are revealed one per round (MSB first)
/// across all lanes at once: a lane is decided the first round its bit
/// differs from the threshold's. The expected number of undecided lanes
/// halves per round, so ~log2(64) + 2 draws decide all 64 lanes — the
/// batched sampler behind the Chung-Lu ball-dropping kernel, ~10x fewer
/// RNG draws than 64 separate bernoulli() calls.
inline std::uint64_t bernoulli_lanes(Rng& rng,
                                     std::uint64_t threshold) noexcept {
  std::uint64_t ones = 0;
  std::uint64_t undecided = ~0ULL;
  for (int bit = 63; bit >= 0 && undecided != 0; --bit) {
    const std::uint64_t w = rng();
    if ((threshold >> bit) & 1) {
      ones |= undecided & ~w;   // uniform bit 0 < threshold bit 1: success
      undecided &= w;
    } else {
      undecided &= ~w;          // uniform bit 1 > threshold bit 0: failure
    }
  }
  return ones;  // lanes never decided (p = 2^-64 each) resolve to failure
}

}  // namespace csb
