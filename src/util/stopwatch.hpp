// Monotonic wall-clock stopwatch used by the benchmark harness and the
// Map-Reduce task timer.
#pragma once

#include <chrono>

namespace csb {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace csb
