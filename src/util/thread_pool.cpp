#include "util/thread_pool.hpp"

#include <algorithm>

namespace csb {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CSB_CHECK_MSG(!stopping_, "post() on a stopped ThreadPool");
    queue_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace csb
