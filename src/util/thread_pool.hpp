// Fixed-size worker pool used as the execution backend of the Map-Reduce
// engine (src/mr) and of parallel graph algorithms.
//
// Tasks are type-erased std::function<void()> closures pushed to a single
// mutex-protected queue; for the coarse-grained tasks csb schedules
// (partition-sized units of work) queue contention is negligible. Results
// and exceptions travel through std::future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace csb {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). The pool never resizes.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Fire-and-forget enqueue: no packaged_task, no future, no shared state.
  /// The callable must not let exceptions escape (an escaping exception
  /// would std::terminate the worker) — callers that need error delivery
  /// catch into their own slot (see ClusterSim::run_stage) or use submit().
  void post(std::function<void()> fn);

  /// Schedule a callable; the returned future delivers its result or
  /// rethrows its exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      CSB_CHECK_MSG(!stopping_, "submit() on a stopped ThreadPool");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool sized to the hardware concurrency; lazily constructed.
/// Prefer passing an explicit pool; this exists for convenience call sites
/// (tests, examples) that do not care about placement.
ThreadPool& global_pool();

}  // namespace csb
