#include "veracity/attributes.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "stats/distance.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace csb {

namespace {

/// Extracts attribute `a` of edge `e` as a double.
double attribute_value(const PropertyGraph& graph, NetflowAttribute a,
                       EdgeId e) {
  switch (a) {
    case NetflowAttribute::kProtocol:
      return static_cast<double>(
          static_cast<std::uint8_t>(graph.protocols()[e]));
    case NetflowAttribute::kSrcPort:
      return static_cast<double>(graph.src_ports()[e]);
    case NetflowAttribute::kDstPort:
      return static_cast<double>(graph.dst_ports()[e]);
    case NetflowAttribute::kDurationMs:
      return static_cast<double>(graph.durations_ms()[e]);
    case NetflowAttribute::kOutBytes:
      return static_cast<double>(graph.out_bytes()[e]);
    case NetflowAttribute::kInBytes:
      return static_cast<double>(graph.in_bytes()[e]);
    case NetflowAttribute::kOutPkts:
      return static_cast<double>(graph.out_pkts()[e]);
    case NetflowAttribute::kInPkts:
      return static_cast<double>(graph.in_pkts()[e]);
    case NetflowAttribute::kState:
      return static_cast<double>(
          static_cast<std::uint8_t>(graph.states()[e]));
  }
  return 0.0;
}

std::vector<double> sample_column(const PropertyGraph& graph,
                                  NetflowAttribute a,
                                  std::uint64_t max_samples, Rng& rng) {
  const std::uint64_t m = graph.num_edges();
  std::vector<double> values;
  if (max_samples == 0 || m <= max_samples) {
    values.reserve(m);
    for (EdgeId e = 0; e < m; ++e) {
      values.push_back(attribute_value(graph, a, e));
    }
  } else {
    values.reserve(max_samples);
    for (std::uint64_t i = 0; i < max_samples; ++i) {
      values.push_back(attribute_value(graph, a, rng.uniform(m)));
    }
  }
  return values;
}

}  // namespace

AttributeVeracityReport evaluate_attribute_veracity(
    const PropertyGraph& seed, const PropertyGraph& synthetic,
    std::uint64_t max_samples) {
  CSB_CHECK_MSG(seed.has_properties() && synthetic.has_properties(),
                "attribute veracity requires NetFlow properties on both "
                "graphs");
  CSB_CHECK_MSG(seed.num_edges() > 0 && synthetic.num_edges() > 0,
                "attribute veracity requires non-empty graphs");
  AttributeVeracityReport report;
  Rng rng(0xa11c0ddULL);
  for (std::size_t i = 0; i < kNetflowAttributeCount; ++i) {
    const auto attribute = static_cast<NetflowAttribute>(i);
    const auto seed_values =
        sample_column(seed, attribute, max_samples, rng);
    const auto synth_values =
        sample_column(synthetic, attribute, max_samples, rng);

    AttributeScore score;
    score.attribute = attribute;
    score.ks_distance = ks_distance(seed_values, synth_values);

    // Support coverage: fraction of synthetic values present in the seed.
    std::unordered_set<double> seed_support(seed_values.begin(),
                                            seed_values.end());
    std::uint64_t inside = 0;
    for (const double v : synth_values) {
      if (seed_support.contains(v)) ++inside;
    }
    score.support_coverage =
        static_cast<double>(inside) / static_cast<double>(synth_values.size());
    report.scores[i] = score;
  }
  return report;
}

}  // namespace csb
