// Attribute veracity — the "variety" complement to the structural scores.
//
// §III claims the generators "capture all the features of a network trace";
// this module verifies it attribute by attribute: for each of the nine
// NetFlow columns, the two-sample Kolmogorov-Smirnov distance between the
// seed's and the synthetic graph's value distributions, plus the fraction
// of synthetic values that fall inside the seed's observed support. A
// faithful property generator keeps every KS distance small and the
// support coverage at ~1.
#pragma once

#include <array>
#include <cstdint>

#include "graph/property_graph.hpp"

namespace csb {

struct AttributeScore {
  NetflowAttribute attribute = NetflowAttribute::kProtocol;
  double ks_distance = 0.0;       ///< two-sample KS, 0 = identical
  double support_coverage = 0.0;  ///< synthetic values inside seed support
};

struct AttributeVeracityReport {
  std::array<AttributeScore, kNetflowAttributeCount> scores{};

  [[nodiscard]] double max_ks() const noexcept {
    double worst = 0.0;
    for (const auto& s : scores) worst = std::max(worst, s.ks_distance);
    return worst;
  }
  [[nodiscard]] double min_coverage() const noexcept {
    double worst = 1.0;
    for (const auto& s : scores) {
      worst = std::min(worst, s.support_coverage);
    }
    return worst;
  }
};

/// Both graphs must carry NetFlow properties. For large synthetic graphs
/// the comparison samples up to `max_samples` edges per side (0 = all).
AttributeVeracityReport evaluate_attribute_veracity(
    const PropertyGraph& seed, const PropertyGraph& synthetic,
    std::uint64_t max_samples = 200'000);

}  // namespace csb
