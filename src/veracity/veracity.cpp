#include "veracity/veracity.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/pagerank.hpp"
#include "stats/distance.hpp"
#include "stats/histogram.hpp"
#include "util/parallel.hpp"

namespace csb {

std::vector<double> normalized_degree_distribution(
    const PropertyGraph& graph) {
  const auto degrees = total_degrees(graph);
  std::vector<double> values(degrees.begin(), degrees.end());
  return normalize_by_sum(values);
}

std::vector<double> normalized_pagerank_distribution(
    const PropertyGraph& graph, ThreadPool& pool) {
  const PageRankResult result = pagerank(graph, pool);
  return normalize_by_sum(result.scores);
}

std::vector<double> normalized_degree_distribution(const CsrIndexView& csr,
                                                   ThreadPool* pool) {
  const std::uint64_t n = csr.num_vertices();
  std::vector<double> values(n);
  // Each chunk fills its own disjoint slots; the serial normalize keeps
  // the float summation order fixed, so the result is pool-invariant.
  parallel_for_fixed_chunks(
      pool, 0, static_cast<std::size_t>(n), std::size_t{1} << 16,
      [&](const ChunkRange& c) {
        for (std::size_t v = c.begin; v < c.end; ++v) {
          values[v] = static_cast<double>(csr.total_degree(v));
        }
      });
  return normalize_by_sum(values);
}

std::vector<double> normalized_pagerank_distribution(const CsrIndexView& csr,
                                                     ThreadPool& pool) {
  const PageRankResult result = pagerank_csr(
      csr.in_offsets(), csr.in_neighbors(), csr.out_degrees(), pool);
  return normalize_by_sum(result.scores);
}

double veracity_score(const std::vector<double>& seed_normalized,
                      const std::vector<double>& synthetic_normalized,
                      std::size_t quantile_points) {
  std::vector<double> seed_sorted = seed_normalized;
  std::vector<double> synth_sorted = synthetic_normalized;
  std::sort(seed_sorted.begin(), seed_sorted.end());
  std::sort(synth_sorted.begin(), synth_sorted.end());
  // Map the seed to the synthetic scale: under sum-normalization, a perfect
  // shape clone with V' vertices has values exactly (V/V') times the
  // seed's, so this factor isolates shape error from the pure size shift.
  const double scale = static_cast<double>(seed_sorted.size()) /
                       static_cast<double>(synth_sorted.size());
  // The grid stops short of q = 1: the extreme quantile is a single-vertex
  // statistic (the top hub's share), not a property of the distribution
  // shape — the paper's log-binned distribution plots de-emphasize it the
  // same way.
  double sum = 0.0;
  for (std::size_t i = 0; i < quantile_points; ++i) {
    const double q =
        static_cast<double>(i) / static_cast<double>(quantile_points);
    const double diff =
        sorted_quantile(seed_sorted, q) * scale - sorted_quantile(synth_sorted, q);
    sum += diff * diff;
  }
  return sum / static_cast<double>(quantile_points);
}

VeracityReport evaluate_veracity(const PropertyGraph& seed,
                                 const PropertyGraph& synthetic,
                                 ThreadPool& pool) {
  VeracityReport report;
  report.degree_score = veracity_score(normalized_degree_distribution(seed),
                                       normalized_degree_distribution(synthetic));
  report.pagerank_score =
      veracity_score(normalized_pagerank_distribution(seed, pool),
                     normalized_pagerank_distribution(synthetic, pool));
  return report;
}

VeracityReport evaluate_veracity(const PropertyGraph& seed,
                                 const CsrIndexView& synthetic,
                                 ThreadPool& pool) {
  VeracityReport report;
  report.degree_score =
      veracity_score(normalized_degree_distribution(seed),
                     normalized_degree_distribution(synthetic, &pool));
  report.pagerank_score =
      veracity_score(normalized_pagerank_distribution(seed, pool),
                     normalized_pagerank_distribution(synthetic, pool));
  return report;
}

namespace {

// PageRank values rescaled so the graph's minimum score is 1. Sparse graphs
// put most vertices in an in-degree-0 atom whose sum-normalized score is the
// teleport baseline (1-d)/N plus a dangling-mass term; two same-shape graphs
// with slightly different dangling mass put that atom at slightly different
// absolute values, and the KS statistic then reads the whole atom (often
// > 80% of the mass) as disagreement. Dividing by the minimum pins the
// baseline at exactly 1 in both graphs, so the statistic measures the shape
// of the distribution above the baseline instead of a scalar offset.
std::vector<double> rescale_to_baseline(std::vector<double> values) {
  const auto lowest = std::min_element(values.begin(), values.end());
  if (lowest == values.end() || *lowest <= 0.0) return values;
  const double baseline = *lowest;
  for (double& value : values) value /= baseline;
  return values;
}

std::vector<double> baseline_relative_pagerank(const PropertyGraph& graph,
                                               ThreadPool& pool) {
  return rescale_to_baseline(normalized_pagerank_distribution(graph, pool));
}

std::vector<double> baseline_relative_pagerank(const CsrIndexView& csr,
                                               ThreadPool& pool) {
  return rescale_to_baseline(normalized_pagerank_distribution(csr, pool));
}

}  // namespace

StructuralKs evaluate_structural_ks(const PropertyGraph& a,
                                    const PropertyGraph& b,
                                    ThreadPool& pool) {
  StructuralKs ks;
  ks.degree_ks = ks_distance(normalized_degree_distribution(a),
                             normalized_degree_distribution(b));
  ks.pagerank_ks = ks_distance(baseline_relative_pagerank(a, pool),
                               baseline_relative_pagerank(b, pool));
  return ks;
}

StructuralKs evaluate_structural_ks(const PropertyGraph& a,
                                    const CsrIndexView& b, ThreadPool& pool) {
  StructuralKs ks;
  ks.degree_ks = ks_distance(normalized_degree_distribution(a),
                             normalized_degree_distribution(b, &pool));
  ks.pagerank_ks = ks_distance(baseline_relative_pagerank(a, pool),
                               baseline_relative_pagerank(b, pool));
  return ks;
}

std::vector<DegreeSeriesPoint> degree_distribution_series(
    const PropertyGraph& graph) {
  const auto degrees = total_degrees(graph);
  double degree_sum = 0.0;
  for (const auto d : degrees) degree_sum += static_cast<double>(d);
  Log2Histogram hist;
  for (const auto d : degrees) hist.add(d);

  std::vector<DegreeSeriesPoint> series;
  if (degree_sum <= 0.0 || hist.total() <= 0.0) return series;
  for (std::size_t bin = 0; bin < hist.bins(); ++bin) {
    if (hist.count(bin) == 0.0) continue;
    series.push_back(DegreeSeriesPoint{
        .normalized_degree = Log2Histogram::bin_center(bin) / degree_sum,
        .vertex_fraction = hist.count(bin) / hist.total(),
    });
  }
  return series;
}

}  // namespace csb
