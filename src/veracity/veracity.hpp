// Veracity scoring (paper §V-A).
//
// "We define the veracity score of a synthetic dataset with respect to the
//  seed dataset as the average Euclidean distance of their normalized
//  degree and PageRank distributions. A smaller veracity score indicates
//  higher similarity with the seed dataset."
//
// Normalization divides each per-vertex value by the sum over all vertices
// (so a graph 1000x larger has values ~1000x smaller — the paper's Fig. 5
// down-left shift). The paper attributes the decreasing score trend to
// shape convergence: "when the synthetic graph is relatively small, it does
// not hold enough information to reflect the original data distribution";
// growth improves fidelity. Accordingly the score compares the two
// quantile functions at a common scale: the seed's normalized values are
// mapped to the synthetic graph's scale (x |V_seed| / |V_synth|, the shift
// pure size causes under sum-normalization), and the score is the mean
// squared difference over an even quantile grid. A perfect shape clone of
// any size scores 0; shape errors are weighted by the synthetic scale
// (~1/|V|), which reproduces the paper's magnitudes — tiny, shrinking
// scores for large faithful graphs, and PageRank scores orders of
// magnitude below degree scores.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/property_graph.hpp"
#include "store/shard_store.hpp"
#include "util/thread_pool.hpp"

namespace csb {

/// Per-vertex total degrees divided by their sum.
std::vector<double> normalized_degree_distribution(const PropertyGraph& graph);

/// Per-vertex PageRank scores divided by their sum.
std::vector<double> normalized_pagerank_distribution(
    const PropertyGraph& graph, ThreadPool& pool);

/// Streamed variants over a shard store's mmap'd CSR index: degrees read
/// straight off the on-disk arrays, PageRank runs pagerank_csr over the
/// mapped spans — the edge list never materializes in RAM. Same math as
/// the in-RAM overloads (shared implementation), so scores agree. The
/// degree fill takes an optional pool: chunks write disjoint slots, so
/// the values are identical at any pool size.
std::vector<double> normalized_degree_distribution(const CsrIndexView& csr,
                                                   ThreadPool* pool = nullptr);
std::vector<double> normalized_pagerank_distribution(const CsrIndexView& csr,
                                                     ThreadPool& pool);

/// The veracity score: mean squared difference between the seed's and the
/// synthetic graph's normalized-value quantile functions, with the seed
/// rescaled by |V_seed| / |V_synth| to the synthetic scale (see the file
/// comment). Lower = more faithful; 0 = exact shape clone.
double veracity_score(const std::vector<double>& seed_normalized,
                      const std::vector<double>& synthetic_normalized,
                      std::size_t quantile_points = 101);

/// Both §V-A scores of a synthetic graph against a seed.
struct VeracityReport {
  double degree_score = 0.0;
  double pagerank_score = 0.0;
};

VeracityReport evaluate_veracity(const PropertyGraph& seed,
                                 const PropertyGraph& synthetic,
                                 ThreadPool& pool);

/// Veracity of an out-of-core synthetic graph: the seed stays in RAM, the
/// synthetic side streams over the shard store's CSR index.
VeracityReport evaluate_veracity(const PropertyGraph& seed,
                                 const CsrIndexView& synthetic,
                                 ThreadPool& pool);

/// Two-sample Kolmogorov–Smirnov distances between the normalized degree
/// and PageRank distributions of two graphs (stats/distance.hpp ks_distance
/// underneath). This is the matched-scale fidelity metric that validates
/// the fast samplers against their exact counterparts: both graphs are the
/// same order of magnitude, so the per-vertex values are directly
/// comparable and the statistic is in [0, 1]. PageRank values are compared
/// relative to each graph's minimum score (the in-degree-0 teleport
/// baseline): the baseline's absolute position shifts with dangling mass
/// alone, and on sparse graphs — where the baseline atom holds most of the
/// vertices — the raw statistic would read that scalar offset as near-total
/// disagreement even between two runs of the same exact generator.
struct StructuralKs {
  double degree_ks = 0.0;
  double pagerank_ks = 0.0;
};
StructuralKs evaluate_structural_ks(const PropertyGraph& a,
                                    const PropertyGraph& b, ThreadPool& pool);

/// Structural KS with the second graph streamed from a shard store's CSR.
StructuralKs evaluate_structural_ks(const PropertyGraph& a,
                                    const CsrIndexView& b, ThreadPool& pool);

/// The log-binned normalized degree distribution series plotted in Fig. 5:
/// (normalized degree bin center, fraction of vertices) points.
struct DegreeSeriesPoint {
  double normalized_degree = 0.0;
  double vertex_fraction = 0.0;
};
std::vector<DegreeSeriesPoint> degree_distribution_series(
    const PropertyGraph& graph);

}  // namespace csb
