#include "workload/query_engine.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"

namespace csb {

bool FlowFilter::matches(const PropertyGraph& graph, EdgeId e) const {
  if (protocol && graph.protocols()[e] != *protocol) return false;
  if (dst_port && graph.dst_ports()[e] != *dst_port) return false;
  if (state && graph.states()[e] != *state) return false;
  const std::uint64_t total = graph.out_bytes()[e] + graph.in_bytes()[e];
  return total >= min_total_bytes && total <= max_total_bytes;
}

GraphQueryEngine::GraphQueryEngine(const PropertyGraph& graph)
    : graph_(&graph),
      out_csr_(graph, CsrDirection::kOut),
      in_csr_(graph, CsrDirection::kIn) {}

std::vector<VertexId> GraphQueryEngine::top_k_by_degree(std::size_t k) const {
  const std::uint64_t n = graph_->num_vertices();
  std::vector<VertexId> hosts(n);
  for (VertexId v = 0; v < n; ++v) hosts[v] = v;
  const auto degree = [this](VertexId v) {
    return out_csr_.degree(v) + in_csr_.degree(v);
  };
  k = std::min<std::size_t>(k, n);
  std::partial_sort(hosts.begin(), hosts.begin() + k, hosts.end(),
                    [&](VertexId a, VertexId b) {
                      const auto da = degree(a);
                      const auto db = degree(b);
                      return da != db ? da > db : a < b;
                    });
  hosts.resize(k);
  return hosts;
}

std::vector<VertexId> GraphQueryEngine::top_k_by_traffic(
    std::size_t k) const {
  CSB_CHECK_MSG(graph_->has_properties(),
                "top_k_by_traffic requires NetFlow properties");
  const std::uint64_t n = graph_->num_vertices();
  std::vector<std::uint64_t> volume(n, 0);
  const auto src = graph_->sources();
  const auto dst = graph_->destinations();
  const auto out_bytes = graph_->out_bytes();
  const auto in_bytes = graph_->in_bytes();
  for (std::size_t e = 0; e < src.size(); ++e) {
    const std::uint64_t total = out_bytes[e] + in_bytes[e];
    volume[src[e]] += total;
    volume[dst[e]] += total;
  }
  std::vector<VertexId> hosts(n);
  for (VertexId v = 0; v < n; ++v) hosts[v] = v;
  k = std::min<std::size_t>(k, n);
  std::partial_sort(hosts.begin(), hosts.begin() + k, hosts.end(),
                    [&](VertexId a, VertexId b) {
                      return volume[a] != volume[b] ? volume[a] > volume[b]
                                                    : a < b;
                    });
  hosts.resize(k);
  return hosts;
}

HostSummary GraphQueryEngine::host_summary(VertexId host) const {
  CSB_CHECK_MSG(host < graph_->num_vertices(), "unknown host");
  HostSummary summary;
  summary.host = host;
  summary.flows_out = out_csr_.degree(host);
  summary.flows_in = in_csr_.degree(host);
  if (!graph_->has_properties()) return summary;
  const auto src = graph_->sources();
  const auto dst = graph_->destinations();
  const auto out_bytes = graph_->out_bytes();
  const auto in_bytes = graph_->in_bytes();
  for (std::size_t e = 0; e < src.size(); ++e) {
    if (src[e] == host) {
      summary.bytes_sent += out_bytes[e];
      summary.bytes_received += in_bytes[e];
    }
    if (dst[e] == host) {
      summary.bytes_sent += in_bytes[e];
      summary.bytes_received += out_bytes[e];
    }
  }
  return summary;
}

std::uint64_t GraphQueryEngine::count_flows(const FlowFilter& filter) const {
  CSB_CHECK_MSG(graph_->has_properties(),
                "flow queries require NetFlow properties");
  std::uint64_t count = 0;
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    if (filter.matches(*graph_, e)) ++count;
  }
  return count;
}

std::vector<EdgeId> GraphQueryEngine::find_flows(const FlowFilter& filter,
                                                 std::size_t limit) const {
  CSB_CHECK_MSG(graph_->has_properties(),
                "flow queries require NetFlow properties");
  std::vector<EdgeId> matches;
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    if (filter.matches(*graph_, e)) {
      matches.push_back(e);
      if (limit != 0 && matches.size() >= limit) break;
    }
  }
  return matches;
}

std::optional<std::vector<VertexId>> GraphQueryEngine::shortest_path(
    VertexId src, VertexId dst) const {
  CSB_CHECK_MSG(src < graph_->num_vertices() && dst < graph_->num_vertices(),
                "unknown endpoint");
  if (src == dst) return std::vector<VertexId>{src};
  std::vector<VertexId> parent(graph_->num_vertices(),
                               static_cast<VertexId>(-1));
  std::queue<VertexId> frontier;
  frontier.push(src);
  parent[src] = src;
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (const VertexId w : out_csr_.neighbors(v)) {
      if (parent[w] != static_cast<VertexId>(-1)) continue;
      parent[w] = v;
      if (w == dst) {
        std::vector<VertexId> path{dst};
        for (VertexId at = dst; at != src; at = parent[at]) {
          path.push_back(parent[at]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(w);
    }
  }
  return std::nullopt;
}

std::vector<VertexId> GraphQueryEngine::k_hop_neighborhood(
    VertexId start, std::uint32_t hops) const {
  CSB_CHECK_MSG(start < graph_->num_vertices(), "unknown start vertex");
  std::unordered_set<VertexId> visited{start};
  std::vector<VertexId> frontier{start};
  std::vector<VertexId> reached;
  for (std::uint32_t level = 0; level < hops && !frontier.empty(); ++level) {
    std::vector<VertexId> next;
    for (const VertexId v : frontier) {
      for (const VertexId w : out_csr_.neighbors(v)) {
        if (visited.insert(w).second) {
          next.push_back(w);
          reached.push_back(w);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(reached.begin(), reached.end());
  return reached;
}

PropertyGraph GraphQueryEngine::egonet(VertexId center) const {
  CSB_CHECK_MSG(center < graph_->num_vertices(), "unknown center vertex");
  // Member set: the center plus its out- and in-neighbors.
  std::set<VertexId> members{center};
  for (const VertexId w : out_csr_.neighbors(center)) members.insert(w);
  for (const VertexId w : in_csr_.neighbors(center)) members.insert(w);

  std::unordered_map<VertexId, VertexId> remap;
  remap.reserve(members.size());
  remap[center] = 0;
  VertexId next_id = 1;
  for (const VertexId v : members) {
    if (v != center) remap[v] = next_id++;
  }

  PropertyGraph ego(members.size());
  const auto src = graph_->sources();
  const auto dst = graph_->destinations();
  const bool props = graph_->has_properties();
  for (std::size_t e = 0; e < src.size(); ++e) {
    const auto su = remap.find(src[e]);
    if (su == remap.end()) continue;
    const auto sv = remap.find(dst[e]);
    if (sv == remap.end()) continue;
    if (props) {
      ego.add_edge(su->second, sv->second, graph_->edge_properties(e));
    } else {
      ego.add_edge(su->second, sv->second);
    }
  }
  return ego;
}

std::vector<VertexId> GraphQueryEngine::scanning_fans(
    std::uint64_t min_fanout, double max_avg_bytes) const {
  CSB_CHECK_MSG(graph_->has_properties(),
                "scanning_fans requires NetFlow properties");
  const std::uint64_t n = graph_->num_vertices();
  // Per-source distinct destinations, flow count and byte totals.
  std::vector<std::uint64_t> bytes(n, 0);
  std::vector<std::uint64_t> flows(n, 0);
  const auto src = graph_->sources();
  const auto dst = graph_->destinations();
  const auto out_bytes = graph_->out_bytes();
  const auto in_bytes = graph_->in_bytes();
  for (std::size_t e = 0; e < src.size(); ++e) {
    bytes[src[e]] += out_bytes[e] + in_bytes[e];
    flows[src[e]] += 1;
  }

  std::vector<VertexId> fans;
  for (VertexId v = 0; v < n; ++v) {
    if (flows[v] < min_fanout) continue;
    const double avg =
        static_cast<double>(bytes[v]) / static_cast<double>(flows[v]);
    if (avg <= max_avg_bytes) fans.push_back(v);
  }
  return fans;
}

}  // namespace csb
