// The benchmark's query workload (paper §I: "To be representative from the
// workload perspective, the benchmark must include typical operations
// executed in the cyber-security domain, such as queries on nodes, edges,
// paths, and sub-graphs").
//
// GraphQueryEngine answers that catalogue over a property graph:
//   nodes     — top-k hosts by degree or traffic volume, host summaries;
//   edges     — flow scans under a NetFlow predicate;
//   paths     — BFS shortest paths and k-hop reachability;
//   subgraphs — egonets and the "scanning fan" star pattern an analyst
//               hunts for (one source, many small flows).
//
// Construction builds the out/in CSR views once; all queries are read-only
// and safe to issue from multiple threads concurrently.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr.hpp"
#include "graph/property_graph.hpp"

namespace csb {

/// Edge predicate over the §III NetFlow attributes; unset fields match
/// everything.
struct FlowFilter {
  std::optional<Protocol> protocol;
  std::optional<std::uint16_t> dst_port;
  std::uint64_t min_total_bytes = 0;
  std::uint64_t max_total_bytes = UINT64_MAX;
  std::optional<ConnState> state;

  [[nodiscard]] bool matches(const PropertyGraph& graph, EdgeId e) const;
};

struct HostSummary {
  VertexId host = 0;
  std::uint64_t flows_out = 0;
  std::uint64_t flows_in = 0;
  std::uint64_t bytes_sent = 0;      ///< sum over incident flows, both roles
  std::uint64_t bytes_received = 0;
};

class GraphQueryEngine {
 public:
  explicit GraphQueryEngine(const PropertyGraph& graph);
  /// The engine aliases the graph; a temporary would dangle immediately.
  explicit GraphQueryEngine(PropertyGraph&&) = delete;

  [[nodiscard]] const PropertyGraph& graph() const noexcept { return *graph_; }

  // --- node queries ---

  /// Hosts with the largest total degree, descending; ties by smaller id.
  [[nodiscard]] std::vector<VertexId> top_k_by_degree(std::size_t k) const;

  /// Hosts moving the most bytes (sent + received). Requires properties.
  [[nodiscard]] std::vector<VertexId> top_k_by_traffic(std::size_t k) const;

  [[nodiscard]] HostSummary host_summary(VertexId host) const;

  // --- edge queries ---

  [[nodiscard]] std::uint64_t count_flows(const FlowFilter& filter) const;

  /// Matching edge ids, at most `limit` (0 = unlimited), in edge order.
  [[nodiscard]] std::vector<EdgeId> find_flows(const FlowFilter& filter,
                                               std::size_t limit = 0) const;

  // --- path queries ---

  /// Directed BFS shortest path (vertex sequence src..dst); nullopt when
  /// unreachable.
  [[nodiscard]] std::optional<std::vector<VertexId>> shortest_path(
      VertexId src, VertexId dst) const;

  /// All vertices within `hops` directed hops of `start` (excluding it),
  /// ascending order.
  [[nodiscard]] std::vector<VertexId> k_hop_neighborhood(
      VertexId start, std::uint32_t hops) const;

  // --- subgraph queries ---

  /// The induced subgraph of `center` and its direct (out+in) neighbors;
  /// vertex ids are remapped densely, center first. Properties preserved.
  [[nodiscard]] PropertyGraph egonet(VertexId center) const;

  /// "Scanning fan" pattern: sources emitting at least `min_fanout` flows
  /// whose average size is below `max_avg_bytes` — the sub-graph shape of
  /// §IV's scanning traffic (host scans fan over one target's ports,
  /// network scans over many hosts; both are many-small-probe stars).
  /// Ascending host order.
  [[nodiscard]] std::vector<VertexId> scanning_fans(
      std::uint64_t min_fanout, double max_avg_bytes) const;

 private:
  const PropertyGraph* graph_;
  CsrView out_csr_;
  CsrView in_csr_;
};

}  // namespace csb
