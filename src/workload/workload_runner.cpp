#include "workload/workload_runner.hpp"

#include <atomic>
#include <future>
#include <span>
#include <vector>

#include "stats/alias_table.hpp"
#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace csb {

namespace {

/// Executes one query of the given class and folds a witness value into
/// the checksum.
std::uint64_t execute(const GraphQueryEngine& engine, QueryClass cls,
                      Rng& rng) {
  const PropertyGraph& graph = engine.graph();
  const std::uint64_t n = graph.num_vertices();
  const auto random_host = [&] { return rng.uniform(n); };
  switch (cls) {
    case QueryClass::kTopKDegree: {
      const auto top = engine.top_k_by_degree(10);
      return top.empty() ? 0 : top.front();
    }
    case QueryClass::kHostSummary: {
      const HostSummary summary = engine.host_summary(random_host());
      return summary.flows_in + summary.flows_out + summary.bytes_sent;
    }
    case QueryClass::kFlowScan: {
      FlowFilter filter;
      filter.protocol = rng.bernoulli(0.5) ? Protocol::kTcp : Protocol::kUdp;
      filter.min_total_bytes = rng.uniform(4096);
      return engine.count_flows(filter);
    }
    case QueryClass::kShortestPath: {
      const auto path = engine.shortest_path(random_host(), random_host());
      return path ? path->size() : 0;
    }
    case QueryClass::kTwoHop: {
      return engine.k_hop_neighborhood(random_host(), 2).size();
    }
    case QueryClass::kEgonet: {
      return engine.egonet(random_host()).num_edges();
    }
    case QueryClass::kScanningFans: {
      return engine.scanning_fans(16, 500.0).size();
    }
  }
  return 0;
}

}  // namespace

WorkloadResult run_workload(const GraphQueryEngine& engine,
                            const WorkloadOptions& options) {
  CSB_CHECK_MSG(options.queries > 0, "workload needs queries");
  CSB_CHECK_MSG(engine.graph().num_vertices() > 0,
                "workload needs a non-empty graph");
  const AliasTable mix(std::span<const double>(options.mix.weights.data(),
                                               options.mix.weights.size()));

  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  const std::uint64_t per_thread =
      (options.queries + threads - 1) / threads;

  WorkloadResult result;
  std::vector<std::array<std::uint64_t, kQueryClassCount>> class_counts(
      threads, std::array<std::uint64_t, kQueryClassCount>{});
  std::vector<std::uint64_t> checksums(threads, 0);
  std::vector<std::uint64_t> executed(threads, 0);

  ThreadPool pool(threads);
  Stopwatch wall;
  std::vector<std::future<void>> pending;
  std::uint64_t remaining = options.queries;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::uint64_t quota = std::min<std::uint64_t>(per_thread, remaining);
    remaining -= quota;
    if (quota == 0) break;
    pending.push_back(pool.submit([&, t, quota] {
      Rng rng = Rng(options.seed).fork(t);
      for (std::uint64_t q = 0; q < quota; ++q) {
        const auto cls = static_cast<QueryClass>(mix.sample(rng));
        checksums[t] ^= execute(engine, cls, rng) + 0x9e3779b9 * q;
        ++class_counts[t][static_cast<std::size_t>(cls)];
        ++executed[t];
      }
    }));
  }
  for (auto& f : pending) f.get();
  result.wall_seconds = wall.seconds();

  for (std::size_t t = 0; t < threads; ++t) {
    result.total_queries += executed[t];
    result.checksum ^= checksums[t];
    for (std::size_t c = 0; c < kQueryClassCount; ++c) {
      result.per_class[c] += class_counts[t][c];
    }
  }
  return result;
}

}  // namespace csb
