// Mixed-query workload execution — the "velocity" axis of the benchmark
// (paper §I: velocity "measures the maximum rate at which the data can be
// analyzed"). A WorkloadMix assigns weights to the query classes; the
// runner issues a randomized stream against a GraphQueryEngine across a
// thread pool and reports per-class and aggregate throughput.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/random.hpp"
#include "util/thread_pool.hpp"
#include "workload/query_engine.hpp"

namespace csb {

enum class QueryClass : std::uint8_t {
  kTopKDegree = 0,
  kHostSummary,
  kFlowScan,
  kShortestPath,
  kTwoHop,
  kEgonet,
  kScanningFans,
};
inline constexpr std::size_t kQueryClassCount = 7;

[[nodiscard]] constexpr std::string_view to_string(QueryClass c) noexcept {
  switch (c) {
    case QueryClass::kTopKDegree: return "top-k-degree";
    case QueryClass::kHostSummary: return "host-summary";
    case QueryClass::kFlowScan: return "flow-scan";
    case QueryClass::kShortestPath: return "shortest-path";
    case QueryClass::kTwoHop: return "two-hop";
    case QueryClass::kEgonet: return "egonet";
    case QueryClass::kScanningFans: return "scanning-fans";
  }
  return "?";
}

struct WorkloadMix {
  /// Relative weights by QueryClass index. The default mix leans on the
  /// cheap point lookups an IDS dashboard issues constantly, with
  /// periodic heavier sweeps.
  std::array<double, kQueryClassCount> weights{8, 30, 10, 20, 20, 10, 2};
};

struct WorkloadResult {
  std::uint64_t total_queries = 0;
  double wall_seconds = 0.0;
  std::array<std::uint64_t, kQueryClassCount> per_class{};
  /// Checksum over query results — defeats dead-code elimination and makes
  /// runs comparable.
  std::uint64_t checksum = 0;

  [[nodiscard]] double queries_per_second() const noexcept {
    return wall_seconds > 0 ? static_cast<double>(total_queries) / wall_seconds
                            : 0.0;
  }
};

struct WorkloadOptions {
  std::uint64_t queries = 10'000;
  WorkloadMix mix{};
  std::size_t threads = 1;
  std::uint64_t seed = 1;
};

/// Runs the mixed stream; query parameters (hosts, ports, filters) are
/// drawn deterministically from the seed.
WorkloadResult run_workload(const GraphQueryEngine& engine,
                            const WorkloadOptions& options);

}  // namespace csb
