// Unit tests for src/bench_support: table rendering and cell formatting —
// the harness output every experiment's results flow through.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "bench_support/report.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace csb {
namespace {

// Captures stdout around a callable.
template <typename F>
std::string capture_stdout(F&& fn) {
  ::testing::internal::CaptureStdout();
  fn();
  return ::testing::internal::GetCapturedStdout();
}

TEST(ReportTableTest, RendersAlignedColumns) {
  ReportTable table("demo", {"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"a-much-longer-name", "23456"});
  const std::string out = capture_stdout([&] { table.print(); });
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Column alignment: every line starts the "value" column at the same
  // offset, i.e. the header's "value" and first row's "1" line up.
  const auto header_pos = out.find("value");
  const auto row_line = out.find("alpha");
  ASSERT_NE(header_pos, std::string::npos);
  ASSERT_NE(row_line, std::string::npos);
  const auto header_line_start = out.rfind('\n', header_pos) + 1;
  const auto row_value_pos = out.find('1', row_line);
  const auto row_line_start = out.rfind('\n', row_value_pos) + 1;
  EXPECT_EQ(header_pos - header_line_start, row_value_pos - row_line_start);
}

TEST(ReportTableTest, RejectsMismatchedRows) {
  ReportTable table("t", {"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), CsbError);
  EXPECT_THROW(ReportTable("t", {}), CsbError);
  EXPECT_EQ(table.rows(), 0u);
}

TEST(ReportCellsTest, Formatting) {
  EXPECT_EQ(cell_u64(1234567), "1,234,567");
  EXPECT_EQ(cell_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(cell_fixed(2.0, 0), "2");
  EXPECT_EQ(cell_sci(12345.0, 3), "1.23e+04");
}

TEST(ExperimentHeaderTest, PrintsFigureAndClaim) {
  const std::string out = capture_stdout(
      [] { print_experiment_header("Fig. X", "things go up"); });
  EXPECT_NE(out.find("### Fig. X"), std::string::npos);
  EXPECT_NE(out.find("paper: things go up"), std::string::npos);
}

TEST(ReportJsonTest, SerializesTitleColumnsAndRows) {
  ReportTable table("speedup vs 10 nodes", {"nodes", "pgsk_s"});
  table.add_row({"10", "1.234"});
  table.add_row({"20", "0.617"});
  EXPECT_EQ(table.to_json(),
            "{\"title\": \"speedup vs 10 nodes\", "
            "\"columns\": [\"nodes\", \"pgsk_s\"], "
            "\"rows\": [[\"10\", \"1.234\"], [\"20\", \"0.617\"]]}");
}

TEST(ReportJsonTest, EscapesSpecialCharacters) {
  ReportTable table("quote \" backslash \\ newline \n", {"c"});
  table.add_row({"\ttab"});
  const std::string json = table.to_json();
  EXPECT_NE(json.find("quote \\\" backslash \\\\ newline \\n"),
            std::string::npos);
  EXPECT_NE(json.find("\\ttab"), std::string::npos);
}

TEST(ReportJsonTest, JsonOutputPathParsesBothForms) {
  const char* split[] = {"bench", "--json", "out.json"};
  EXPECT_EQ(json_output_path(3, const_cast<char**>(split)), "out.json");
  const char* joined[] = {"bench", "--json=other.json"};
  EXPECT_EQ(json_output_path(2, const_cast<char**>(joined)), "other.json");
  const char* none[] = {"bench"};
  EXPECT_EQ(json_output_path(1, const_cast<char**>(none)), "");
  // --json with no value is ignored, not an out-of-bounds read.
  const char* dangling[] = {"bench", "--json"};
  EXPECT_EQ(json_output_path(2, const_cast<char**>(dangling)), "");
}

TEST(ReportJsonTest, WriteTraceReportRoundTrips) {
  ReportTable a("first", {"x", "y"});
  a.add_row({"1", "2.5"});
  a.add_row({"3", "4.5"});
  ReportTable b("second", {"z"});  // no rows -> no bench records
  const std::string path = ::testing::TempDir() + "csb_report_test.ndjson";
  write_trace_report(path, "bench_support_test", {&a, &b});

  std::vector<std::string> errors;
  const ParsedTrace trace = parse_trace_file(path, &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(trace.meta_value("tool"), "bench_support_test");
  ASSERT_EQ(trace.benches.size(), 2u);
  EXPECT_EQ(trace.benches[0].name, "first");
  ASSERT_EQ(trace.benches[0].fields.size(), 2u);
  EXPECT_EQ(trace.benches[0].fields[0].first, "x");
  EXPECT_EQ(trace.benches[0].fields[0].second.as_string(), "1");
  EXPECT_EQ(trace.benches[0].fields[1].first, "y");
  EXPECT_EQ(trace.benches[0].fields[1].second.as_string(), "2.5");
  EXPECT_EQ(trace.benches[1].fields[1].second.as_string(), "4.5");

  // Every line carries the schema version tag.
  std::ifstream file(path);
  ASSERT_TRUE(file.is_open());
  std::string line;
  while (std::getline(file, line)) {
    EXPECT_NE(line.find("\"v\":\"csb.trace.v1\""), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace csb
