// Fixture: atomic-float-reduce. Lines tagged "VIOLATION" must each produce
// exactly one diagnostic; the suppressed accumulation must be silenced and
// counted; integer atomics and chunk-order partials stay clean. Never
// compiled.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

std::atomic<double> shared_sum{0.0};
std::atomic<float> shared_error{0.0f};
std::atomic<std::uint64_t> shared_count{0};

void racy_sum(ThreadPool* pool) {
  parallel_for(pool, 0, 100, [&](std::size_t i) {
    shared_sum.fetch_add(static_cast<double>(i));  // VIOLATION
    shared_count.fetch_add(1);  // integer atomic: exact at any commit order
  });
}

void racy_cas(float value) {
  float expected = shared_error.load();
  while (!shared_error.compare_exchange_weak(  // VIOLATION
      expected, expected + value)) {
  }
}

void racy_drain(std::atomic<double>* totals) {
  std::atomic<double>& slot = totals[0];
  slot.fetch_sub(1.0);  // VIOLATION
}

void blessed_partials(ThreadPool* pool, std::size_t chunks) {
  std::vector<double> partials(chunks, 0.0);
  parallel_for_fixed_chunks(pool, 0, 100, 10, [&](const ChunkRange& c) {
    double local = 0.0;
    for (std::size_t i = c.begin; i < c.end; ++i) {
      local += static_cast<double>(i);
    }
    partials[c.chunk_index] = local;
  });
}

void justified(double value) {
  // csblint: atomic-float-reduce-ok — fixture case
  shared_sum.fetch_add(value);
}

}  // namespace fixture
