// Fixture: banned-functions. Lines tagged "VIOLATION" must each produce
// exactly one diagnostic in any directory (the rule is unscoped); the
// suppressed parse must be silenced and counted. Never compiled.
#include <cstdlib>
#include <cstring>

namespace fixture {

void unbounded_copy(char* dst, const char* src) {
  strcpy(dst, src);  // VIOLATION
}

void unbounded_format(char* dst, int value) {
  sprintf(dst, "%d", value);  // VIOLATION
}

int unchecked_parse(const char* text) {
  return atoi(text);  // VIOLATION
}

int exempt_parse(const char* text) {
  return atoi(text);  // csblint: banned-functions-ok — fixture case
}

int member_named_atoi(Parser& parser, const char* text) {
  return parser.atoi(text);  // member call, not the C function
}

}  // namespace fixture
