// Fixture: detached-thread-capture. Lines tagged "VIOLATION" must each
// produce exactly one diagnostic; by-value captures, lambdas nested inside
// the spawned lambda, and the suppressed case stay silent. Never compiled.
#include <future>
#include <thread>
#include <vector>

namespace fixture {

struct Worker {
  std::vector<int> data;

  void risky_member() {
    std::thread t([this] { data.push_back(1); });  // VIOLATION
    t.join();
  }
};

void risky_ref(std::vector<int>& out) {
  auto task =
      std::async(std::launch::async, [&out] { out.push_back(1); });  // VIOLATION
  task.get();
}

void risky_detach() {
  std::thread t([](int x) { (void)x; }, 1);
  t.detach();  // VIOLATION
}

void safe_by_value(std::vector<int> in) {
  std::thread t([in] { (void)in.size(); });
  t.join();
}

void inner_lambda_runs_on_the_same_thread(std::vector<int> in) {
  std::thread t([in] {
    auto each = [&in](int v) { (void)v; };
    each(1);
  });
  t.join();
}

void justified(std::vector<int>& out) {
  // csblint: detached-thread-capture-ok — fixture case
  auto task = std::async(std::launch::async, [&out] { out.clear(); });
  task.get();
}

}  // namespace fixture
