// Fixture: lock-discipline. Lines tagged "VIOLATION" must each produce
// exactly one diagnostic; RAII guards and the suppressed case stay silent.
// Never compiled.
#include <mutex>
#include <shared_mutex>
#include <stdexcept>

namespace fixture {

std::mutex queue_mutex;
std::shared_mutex table_mutex;

void leaky(bool fail) {
  queue_mutex.lock();  // VIOLATION
  if (fail) throw std::runtime_error("skips the unlock");
  queue_mutex.unlock();  // VIOLATION
}

void manual_pair() {
  table_mutex.lock();  // VIOLATION
  table_mutex.unlock();  // VIOLATION
}

void blessed() {
  std::lock_guard<std::mutex> guard(queue_mutex);
}

void blessed_scoped() {
  std::scoped_lock guard(queue_mutex, table_mutex);
}

void justified_handoff() {
  // csblint: lock-discipline-ok — fixture case
  queue_mutex.lock();
}

}  // namespace fixture
