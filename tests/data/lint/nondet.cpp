// Fixture: banned-nondeterminism. Lines tagged "VIOLATION" must each
// produce exactly one diagnostic when linted under a src/gen/ path; the
// suppressed call must be silenced and counted. Never compiled.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int entropy() {
  return std::rand();  // VIOLATION
}

unsigned seed_from_os() {
  std::random_device device;  // VIOLATION
  return device();
}

long wall_clock_stamp() {
  return time(nullptr);  // VIOLATION
}

long exempt_stamp() {
  return time(nullptr);  // csblint: banned-nondeterminism-ok — fixture case
}

long member_named_time(struct Clock& clock) {
  return clock.time();  // member call: someone else's API, not flagged
}

}  // namespace fixture
