// Fixture: raw-parallel-reduce. Lines tagged "VIOLATION" must each produce
// exactly one diagnostic; the suppressed accumulation must be silenced and
// counted; the per-chunk-partial pattern must stay clean. Never compiled.
#include <cstddef>

namespace fixture {

double total = 0.0;

void racy_reduce(ThreadPool* pool) {
  parallel_for(pool, 0, 100, [&](std::size_t i) {
    total += static_cast<double>(i);  // VIOLATION
  });
}

void blessed_partials(ThreadPool* pool) {
  parallel_for(pool, 0, 100, [&](std::size_t i) {
    double local = 0.0;
    local += static_cast<double>(i);  // lambda-local partial: fine
    publish(local);
  });
}

void justified_reduce(ThreadPool* pool) {
  parallel_for(pool, 0, 100, [&](std::size_t i) {
    // csblint: raw-parallel-reduce-ok — fixture case
    total += static_cast<double>(i);
  });
}

}  // namespace fixture
