// Fixture: counter-rng-reuse. Lines tagged "VIOLATION" must each produce
// exactly one diagnostic; distinct salts per loop and the suppressed
// replay stay silent. Never compiled.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fixture {

inline constexpr std::uint64_t kNoiseSalt = 0x5eed;

void reused_stream(ThreadPool* pool, std::uint64_t seed, std::size_t n) {
  std::vector<std::uint64_t> first(n);
  parallel_for_fixed_chunks(pool, 0, n, 1024, [&](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      first[i] = counter_rng(seed, i).next();
    }
  });
  std::vector<std::uint64_t> second(n);
  parallel_for_fixed_chunks(pool, 0, n, 1024, [&](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      second[i] = counter_rng(seed, i).next();  // VIOLATION
    }
  });
}

void salted_streams(ThreadPool* pool, std::uint64_t seed, std::size_t n) {
  std::vector<std::uint64_t> first(n);
  parallel_for_fixed_chunks(pool, 0, n, 1024, [&](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      first[i] = counter_rng(seed ^ kNoiseSalt, i).next();
    }
  });
  std::vector<std::uint64_t> second(n);
  parallel_for_fixed_chunks(pool, 0, n, 1024, [&](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      second[i] = counter_rng(seed, i).next();
    }
  });
}

void justified_replay(ThreadPool* pool, std::uint64_t seed, std::size_t n) {
  std::vector<std::uint64_t> first(n);
  parallel_for_fixed_chunks(pool, 0, n, 1024, [&](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      first[i] = counter_rng(seed, i).next();
    }
  });
  std::vector<std::uint64_t> replay(n);
  parallel_for_fixed_chunks(pool, 0, n, 1024, [&](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      // csblint: counter-rng-reuse-ok — fixture case
      replay[i] = counter_rng(seed, i).next();
    }
  });
}

}  // namespace fixture
