// Fixture: span-balance. Lines tagged "VIOLATION" must each produce
// exactly one diagnostic; the balanced span, the exit inside a nested
// lambda, and the suppressed case stay silent. Every span literal uses a
// documented family so span-naming stays quiet. Never compiled.
#include <cstdint>

namespace fixture {

void discarded(TraceRecorder* trace) {
  trace->begin_phase("grow");  // VIOLATION
}

void never_closed(TraceRecorder* trace) {
  const std::uint64_t id = trace->begin_phase("seed");  // VIOLATION
  (void)id;
}

void skipped_by_check(TraceRecorder* trace, std::uint64_t count) {
  const std::uint64_t id = trace->begin_phase("sample");  // VIOLATION
  CSB_CHECK_MSG(count > 0, "empty input");
  trace->end_phase(id);
}

void serial_deadlock(ClusterSim& cluster, std::vector<Task> tasks) {
  cluster.run_serial("coalesce", [&] {
    cluster.run_stage("attach", std::move(tasks));  // VIOLATION
  });
}

void balanced(TraceRecorder* trace, std::uint64_t n) {
  const std::uint64_t id = trace->begin_phase("generate");
  for (std::uint64_t i = 0; i < n; ++i) {
  }
  trace->end_phase(id);
}

void lambda_exit_stays_inside(TraceRecorder* trace) {
  const std::uint64_t id = trace->begin_phase("filter");
  auto probe = [](std::uint64_t v) { return v + 1; };
  (void)probe(1);
  trace->end_phase(id);
}

void justified(TraceRecorder* trace) {
  // csblint: span-balance-ok — fixture case
  trace->begin_phase("expand");
}

}  // namespace fixture
