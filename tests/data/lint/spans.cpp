// Fixture: span-naming. Lines tagged "VIOLATION" must each produce exactly
// one diagnostic; the suppressed legacy name must be silenced and counted;
// names from the documented grammar must stay clean. Never compiled.

namespace fixture {

void emit_spans(ClusterSim& cluster) {
  cluster.run_stage("distinct:merge", [] {});
  cluster.run_stage("Shuffle", [] {});  // VIOLATION
  cluster.run_serial("warmup:pass", [] {});  // VIOLATION
  cluster.run_serial("kronfit:gradient", [] {});
}

void scoped_span(TraceRecorder& recorder) {
  PhaseScope phase(recorder, "collapse:fold");
  PhaseScope bad(recorder, "Mystery Phase");  // VIOLATION
}

void legacy_span(ClusterSim& cluster) {
  // csblint: span-naming-ok — fixture case
  cluster.run_stage("legacy_stage:keep", [] {});
}

}  // namespace fixture
