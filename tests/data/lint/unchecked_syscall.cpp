// Fixture: unchecked-syscall. Lines tagged "VIOLATION" must each produce
// exactly one diagnostic; checked calls, (void) casts, and the suppressed
// case stay silent. Never compiled.
#include <cstddef>
#include <cstdint>
#include <sys/mman.h>
#include <unistd.h>

namespace fixture {

void sloppy_flush(int fd, long size, const void* buf, std::size_t len) {
  ftruncate(fd, size);  // VIOLATION
  pwrite(fd, buf, len, 0);  // VIOLATION
  fsync(fd);  // VIOLATION
}

void sloppy_map(std::size_t len) {
  mmap(nullptr, len, 0, 0, -1, 0);  // VIOLATION
}

void sloppy_qualified(int fd) {
  ::fdatasync(fd);  // VIOLATION
}

bool checked(int fd, long size, void* buf, std::size_t len) {
  if (ftruncate(fd, size) != 0) return false;
  const auto got = pread(fd, buf, len, 0);
  return got == static_cast<long>(len);
}

void deliberately_discarded(int fd) {
  (void)fdatasync(fd);  // advisory flush: failure is acceptable here
}

void member_call_is_not_the_syscall(Wrapper& file, long size) {
  file.ftruncate(size);
}

void justified(int fd) {
  fsync(fd);  // csblint: unchecked-syscall-ok — fixture case
}

}  // namespace fixture
