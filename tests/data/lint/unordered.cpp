// Fixture: unordered-iteration. Lines tagged "VIOLATION" must each produce
// exactly one diagnostic when linted under a src/stats/ path; the suppressed
// loop must be silenced and counted. Never compiled.
#include <unordered_map>
#include <vector>

namespace fixture {

std::unordered_map<int, int> counts;
std::vector<int> ordered_values;

void iterate_all() {
  for (const auto& [key, value] : counts) {  // VIOLATION
    consume(key, value);
  }
}

void iterate_explicitly() {
  auto it = counts.begin();  // VIOLATION
  consume_iterator(it);
}

void iterate_then_sort() {
  // csblint: unordered-iteration-ok — every key lands in a sorted vector
  for (const auto& [key, value] : counts) {
    collect(key);
  }
}

void ordered_is_fine() {
  for (const int value : ordered_values) {
    consume_one(value);
  }
}

}  // namespace fixture
