// Tests for the extension features beyond the paper's minimum: betweenness
// centrality (exact + sampled), the streaming detector, Dataset coalesce /
// move-concat, duration smoothing, and column-based graph construction.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/betweenness.hpp"
#include "graph/pagerank.hpp"
#include "gen/baselines.hpp"
#include "ids/streaming.hpp"
#include "mr/dataset.hpp"
#include "trace/attacks.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"

namespace csb {
namespace {

// ------------------------------------------------------------ betweenness

TEST(BetweennessTest, PathGraphCenter) {
  // 0 -> 1 -> 2: vertex 1 lies on the single shortest path 0 -> 2.
  PropertyGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ThreadPool pool(2);
  const auto bc = betweenness_centrality(g, pool);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[2], 0.0);
}

TEST(BetweennessTest, StarCenterDirected) {
  // Directed star in both directions: leaves reach each other through 0.
  constexpr std::uint64_t kLeaves = 5;
  PropertyGraph g(kLeaves + 1);
  for (VertexId v = 1; v <= kLeaves; ++v) {
    g.add_edge(v, 0);
    g.add_edge(0, v);
  }
  ThreadPool pool(2);
  const auto bc = betweenness_centrality(g, pool);
  // Each ordered leaf pair (u, w), u != w routes through the hub: 5*4 = 20.
  EXPECT_DOUBLE_EQ(bc[0], static_cast<double>(kLeaves * (kLeaves - 1)));
  for (VertexId v = 1; v <= kLeaves; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(BetweennessTest, SplitShortestPathsShareCredit) {
  // Two equal-length paths 0->1->3 and 0->2->3: vertices 1 and 2 each get
  // half of the single 0->3 dependency.
  PropertyGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  ThreadPool pool(2);
  const auto bc = betweenness_centrality(g, pool);
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
}

TEST(BetweennessTest, ParallelEdgesDoNotInflate) {
  PropertyGraph g(3);
  for (int i = 0; i < 4; ++i) {
    g.add_edge(0, 1);
    g.add_edge(1, 2);
  }
  ThreadPool pool(2);
  const auto bc = betweenness_centrality(g, pool);
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
}

TEST(BetweennessTest, SampledEstimatorTracksExact) {
  // Heavy-tailed BA graph (chains of new -> old edges give the hubs large
  // betweenness); the sampled estimator must rank the top hub first and
  // approximate its exact score.
  const PropertyGraph g = classic_barabasi_albert(300, 2, 17);
  ThreadPool pool(2);
  const auto exact = betweenness_centrality(g, pool);
  BetweennessOptions sampled_options;
  sampled_options.sample_sources = g.num_vertices() / 2;
  const auto sampled = betweenness_centrality(g, pool, sampled_options);
  // The sampled winner must be among the exact top-5 (close hubs may swap
  // rank under sampling), and its estimate within 2x of its exact score.
  const std::size_t sampled_argmax = static_cast<std::size_t>(
      std::distance(sampled.begin(),
                    std::max_element(sampled.begin(), sampled.end())));
  std::vector<std::size_t> rank(exact.size());
  std::iota(rank.begin(), rank.end(), 0);
  std::sort(rank.begin(), rank.end(), [&exact](std::size_t a, std::size_t b) {
    return exact[a] > exact[b];
  });
  EXPECT_TRUE(std::find(rank.begin(), rank.begin() + 5, sampled_argmax) !=
              rank.begin() + 5);
  const double top = exact[sampled_argmax];
  ASSERT_GT(top, 0.0);
  EXPECT_NEAR(sampled[sampled_argmax] / top, 1.0, 1.0);
}

TEST(BetweennessTest, EmptyAndEdgelessGraphs) {
  ThreadPool pool(1);
  PropertyGraph empty;
  EXPECT_TRUE(betweenness_centrality(empty, pool).empty());
  PropertyGraph isolated(4);
  const auto bc = betweenness_centrality(isolated, pool);
  for (const double c : bc) EXPECT_DOUBLE_EQ(c, 0.0);
}

// ------------------------------------------------------ weighted pagerank

TEST(WeightedPageRankTest, UniformWeightsMatchUnweighted) {
  const PropertyGraph g = classic_barabasi_albert(200, 2, 4);
  ThreadPool pool(2);
  const std::vector<double> uniform(g.num_edges(), 1.0);
  const auto weighted = pagerank_weighted(g, pool, uniform);
  const auto plain = pagerank(g, pool);
  ASSERT_EQ(weighted.scores.size(), plain.scores.size());
  for (std::size_t v = 0; v < plain.scores.size(); ++v) {
    EXPECT_NEAR(weighted.scores[v], plain.scores[v], 1e-9);
  }
}

TEST(WeightedPageRankTest, WeightShiftsRankTowardHeavyEdges) {
  // 0 -> 1 and 0 -> 2; all of 0's weight goes to 1.
  PropertyGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  ThreadPool pool(1);
  const std::vector<double> weights = {100.0, 1.0};
  const auto result = pagerank_weighted(g, pool, weights);
  EXPECT_GT(result.scores[1], result.scores[2]);
  double sum = 0.0;
  for (const double s : result.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(WeightedPageRankTest, ZeroWeightVertexIsDangling) {
  PropertyGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ThreadPool pool(1);
  // Vertex 1's only out-edge has weight 0: its mass spreads uniformly.
  const std::vector<double> weights = {1.0, 0.0};
  const auto result = pagerank_weighted(g, pool, weights);
  double sum = 0.0;
  for (const double s : result.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(WeightedPageRankTest, TrafficWeightingPromotesByteHubs) {
  // Two servers with equal flow counts; one moves 1000x the bytes.
  PropertyGraph g(5);
  EdgeProperties heavy;
  heavy.out_bytes = 1'000'000;
  EdgeProperties light;
  light.out_bytes = 1'000;
  g.add_edge(0, 3, heavy);
  g.add_edge(1, 3, heavy);
  g.add_edge(0, 4, light);
  g.add_edge(1, 4, light);
  g.add_edge(2, 0, light);  // feed the sources so ranks differentiate
  g.add_edge(2, 1, light);
  ThreadPool pool(1);
  const auto by_count = pagerank(g, pool);
  const auto by_bytes = pagerank_by_traffic(g, pool);
  // Flow-count PageRank ties the two servers; traffic weighting must not.
  EXPECT_NEAR(by_count.scores[3], by_count.scores[4], 1e-9);
  EXPECT_GT(by_bytes.scores[3], 2.0 * by_bytes.scores[4]);
}

TEST(WeightedPageRankTest, RejectsMisalignedWeights) {
  PropertyGraph g(2);
  g.add_edge(0, 1);
  ThreadPool pool(1);
  EXPECT_THROW((void)pagerank_weighted(g, pool, std::vector<double>{}),
               CsbError);
  EXPECT_THROW(
      (void)pagerank_weighted(g, pool, std::vector<double>{-1.0}),
      CsbError);
}

// ----------------------------------------------------------- diurnal model

TEST(DiurnalTrafficTest, AmplitudeZeroIsBackwardCompatible) {
  TrafficModelConfig config;
  config.benign_sessions = 200;
  const auto flat = TrafficModel(config).generate_benign();
  config.diurnal_amplitude = 0.0;  // explicit zero = same draws
  const auto also_flat = TrafficModel(config).generate_benign();
  ASSERT_EQ(flat.size(), also_flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].start_us, also_flat[i].start_us);
  }
}

TEST(DiurnalTrafficTest, PeakHalfOutweighsTroughHalf) {
  TrafficModelConfig config;
  config.benign_sessions = 8'000;
  config.capture_window_s = 86'400;  // one full day
  config.diurnal_amplitude = 0.9;
  const auto sessions = TrafficModel(config).generate_benign();
  // sin() is positive over the first half period: the first half-day must
  // hold clearly more than half of the sessions.
  std::size_t first_half = 0;
  const std::uint64_t midpoint =
      config.start_time_us + 43'200ull * 1'000'000;
  for (const auto& s : sessions) {
    if (s.start_us < midpoint) ++first_half;
  }
  EXPECT_GT(static_cast<double>(first_half) / sessions.size(), 0.6);
}

TEST(DiurnalTrafficTest, RejectsBadAmplitude) {
  TrafficModelConfig config;
  config.diurnal_amplitude = 1.5;
  EXPECT_THROW(TrafficModel{config}, CsbError);
}

// -------------------------------------------------------------- streaming

NetflowRecord flow_at(std::uint64_t t_us, std::uint32_t src,
                      std::uint32_t dst) {
  NetflowRecord r;
  r.src_ip = src;
  r.dst_ip = dst;
  r.protocol = Protocol::kTcp;
  r.dst_port = 80;
  r.first_us = t_us;
  r.last_us = t_us + 1000;
  r.out_bytes = 54;
  r.out_pkts = 1;
  r.syn_count = 1;
  r.state = ConnState::kS0;
  return r;
}

TEST(StreamingDetectorTest, RaisesAlarmWhenWindowCloses) {
  DetectionThresholds thresholds;  // defaults: nf_t = 128
  StreamingDetector detector(thresholds, StreamingOptions{.window_us = 1'000'000});
  // 500 tiny S0 flows from distinct sources to one victim inside a window.
  std::vector<StreamingAlarm> alarms;
  for (int i = 0; i < 500; ++i) {
    auto raised = detector.ingest(flow_at(1000 + i, 100 + i, 7));
    alarms.insert(alarms.end(), raised.begin(), raised.end());
  }
  EXPECT_TRUE(alarms.empty());  // window still open
  auto raised = detector.ingest(flow_at(5'000'000, 1, 2));
  alarms.insert(alarms.end(), raised.begin(), raised.end());
  ASSERT_FALSE(alarms.empty());
  bool found = false;
  for (const auto& a : alarms) {
    if (a.alarm.detection_ip == 7 &&
        (a.alarm.type == AttackClass::kDdos ||
         a.alarm.type == AttackClass::kSynFlood)) {
      found = true;
      EXPECT_EQ(a.window_start_us, 0u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(detector.windows_closed(), 1u);
}

TEST(StreamingDetectorTest, FinishFlushesOpenWindow) {
  StreamingDetector detector(DetectionThresholds{},
                             StreamingOptions{.window_us = 60'000'000});
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(detector.ingest(flow_at(1000 + i, 100 + i, 7)).empty());
  }
  const auto alarms = detector.finish();
  EXPECT_FALSE(alarms.empty());
  EXPECT_EQ(detector.flows_ingested(), 500u);
}

TEST(StreamingDetectorTest, QuietWindowsRaiseNothing) {
  StreamingDetector detector(DetectionThresholds{},
                             StreamingOptions{.window_us = 1'000'000});
  std::vector<StreamingAlarm> alarms;
  for (int w = 0; w < 10; ++w) {
    for (int i = 0; i < 20; ++i) {
      auto raised = detector.ingest(
          flow_at(w * 1'000'000 + i * 1000, 100 + i, 200 + i));
      alarms.insert(alarms.end(), raised.begin(), raised.end());
    }
  }
  auto raised = detector.finish();
  alarms.insert(alarms.end(), raised.begin(), raised.end());
  EXPECT_TRUE(alarms.empty());
  EXPECT_EQ(detector.windows_closed(), 10u);
}

TEST(StreamingDetectorTest, MatchesBatchDetectorPerWindow) {
  // Streaming over one window == batch detection over the same flows.
  Rng rng(5);
  SynFloodConfig attack;
  attack.victim_ip = 42;
  attack.flows = 2000;
  attack.duration_s = 30;  // inside one 60 s window
  std::vector<NetflowRecord> records;
  for (const auto& s : inject_syn_flood(attack, rng)) {
    records.push_back(to_netflow(s));
  }
  std::sort(records.begin(), records.end(),
            [](const NetflowRecord& a, const NetflowRecord& b) {
              return a.first_us < b.first_us;
            });

  const DetectionThresholds thresholds;
  const auto batch = AnomalyDetector(thresholds).detect(records);

  StreamingDetector streaming(thresholds,
                              StreamingOptions{.window_us = 60'000'000});
  std::vector<Alarm> streamed;
  for (const auto& r : records) {
    for (const auto& a : streaming.ingest(r)) streamed.push_back(a.alarm);
  }
  for (const auto& a : streaming.finish()) streamed.push_back(a.alarm);
  std::sort(streamed.begin(), streamed.end(),
            [](const Alarm& a, const Alarm& b) {
              return std::tie(a.detection_ip, a.type) <
                     std::tie(b.detection_ip, b.type);
            });
  EXPECT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < std::min(streamed.size(), batch.size()); ++i) {
    EXPECT_EQ(streamed[i].detection_ip, batch[i].detection_ip);
    EXPECT_EQ(streamed[i].type, batch[i].type);
  }
}

TEST(StreamingDetectorTest, RejectsOutOfOrderAndBadWindow) {
  StreamingDetector detector(DetectionThresholds{},
                             StreamingOptions{.window_us = 1'000'000});
  detector.ingest(flow_at(5000, 1, 2));
  EXPECT_THROW(detector.ingest(flow_at(4000, 1, 2)), CsbError);
  EXPECT_THROW(StreamingDetector(DetectionThresholds{},
                                 StreamingOptions{.window_us = 0}),
               CsbError);
}

// --------------------------------------------------- dataset extensions

TEST(DatasetCoalesceTest, MergesToTargetPreservingElements) {
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Dataset<int>::from_vector(cluster, data, 16);
  auto merged = std::move(ds).coalesced(4);
  EXPECT_EQ(merged.num_partitions(), 4u);
  auto collected = merged.collect();
  std::sort(collected.begin(), collected.end());
  EXPECT_EQ(collected, data);
}

TEST(DatasetCoalesceTest, NoOpWhenAlreadySmall) {
  ClusterSim cluster(ClusterConfig{.nodes = 1, .cores_per_node = 1});
  auto ds = Dataset<int>::from_vector(cluster, {1, 2, 3}, 2);
  auto merged = std::move(ds).coalesced(8);
  EXPECT_EQ(merged.num_partitions(), 2u);
}

TEST(DatasetConcatMoveTest, StealsPartitions) {
  ClusterSim cluster(ClusterConfig{.nodes = 1, .cores_per_node = 1});
  auto a = Dataset<int>::from_vector(cluster, {1, 2}, 2);
  auto b = Dataset<int>::from_vector(cluster, {3, 4, 5}, 1);
  auto joined = Dataset<int>::concat_move(std::move(a), std::move(b));
  EXPECT_EQ(joined.num_partitions(), 3u);
  EXPECT_EQ(joined.count(), 5u);
}

TEST(ClusterSmoothingTest, MeanEqualizesTaskDurations) {
  // With smoothing, 4 equal-mean tasks on 4 cores have makespan ==
  // mean task time, however lumpy the real durations were.
  ClusterSim lumpy(ClusterConfig{.nodes = 1,
                                 .cores_per_node = 4,
                                 .smooth_task_durations = true});
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([i] {
      volatile double x = 0;
      for (int k = 0; k < (i == 0 ? 4'000'000 : 1000); ++k) x = x + k;
    });
  }
  const StageMetrics stage = lumpy.run_stage("lumpy", std::move(tasks));
  EXPECT_NEAR(stage.makespan_seconds, stage.task_seconds / 4.0,
              stage.task_seconds * 0.01);
}

TEST(FromColumnsTest, BuildsAndValidates) {
  const auto g = PropertyGraph::from_columns(3, {0, 1}, {2, 2});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge_dst(0), 2u);
  EXPECT_THROW(PropertyGraph::from_columns(2, {0}, {5}), CsbError);
  EXPECT_THROW(PropertyGraph::from_columns(2, {0, 1}, {1}), CsbError);
}

TEST(EnsurePropertiesForOverwriteTest, AttachesColumnsOfRightSize) {
  PropertyGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.ensure_properties_for_overwrite();
  EXPECT_TRUE(g.has_properties());
  // Contents are indeterminate; only shape is guaranteed.
  EXPECT_EQ(g.protocols().size(), 2u);
  g.set_edge_properties(0, EdgeProperties{});
  EXPECT_EQ(g.edge_properties(0), EdgeProperties{});
}

}  // namespace
}  // namespace csb
