// Unit tests for src/flow: the flow assembler's TCP state machine, timeout
// handling, byte/packet attribution, and NetFlow CSV IO. Sessions from
// src/trace are used as packet sources, which also pins down the
// session -> packets -> flow contract end to end.
#include <gtest/gtest.h>

#include <sstream>

#include "flow/assembler.hpp"
#include "flow/netflow_io.hpp"
#include "obs/metrics.hpp"
#include "pcap/packet.hpp"
#include "trace/attacks.hpp"
#include "trace/session.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"

namespace csb {
namespace {

std::vector<DecodedPacket> decode_all(const std::vector<PcapPacket>& packets) {
  std::vector<DecodedPacket> decoded;
  for (const auto& packet : packets) {
    auto summary = decode_frame(packet.data.data(), packet.data.size(),
                                packet.orig_len, packet.timestamp_us);
    if (summary) decoded.push_back(*summary);
  }
  return decoded;
}

SessionSpec base_session(Protocol protocol, ConnState state) {
  SessionSpec spec;
  spec.client_ip = 0x0a000001;
  spec.server_ip = 0x0a000002;
  spec.protocol = protocol;
  spec.client_port = 50000;
  spec.server_port = 443;
  spec.start_us = 1'000'000;
  spec.duration_ms = 2000;
  spec.out_bytes = 4000;
  spec.in_bytes = 9000;
  spec.out_pkts = 8;
  spec.in_pkts = 9;
  spec.state = state;
  normalize_session(spec);
  return spec;
}

// --------------------------------------------------- session -> one flow

class TcpStateRoundTrip : public ::testing::TestWithParam<ConnState> {};

TEST_P(TcpStateRoundTrip, AssemblerReproducesSessionExactly) {
  const SessionSpec spec = base_session(Protocol::kTcp, GetParam());
  const NetflowRecord expected = to_netflow(spec);
  const auto flows = assemble_flows(decode_all(to_packets(spec)));
  ASSERT_EQ(flows.size(), 1u);
  const NetflowRecord& flow = flows.front();
  EXPECT_EQ(flow.src_ip, spec.client_ip);
  EXPECT_EQ(flow.dst_ip, spec.server_ip);
  EXPECT_EQ(flow.src_port, spec.client_port);
  EXPECT_EQ(flow.dst_port, spec.server_port);
  EXPECT_EQ(flow.protocol, Protocol::kTcp);
  EXPECT_EQ(flow.state, GetParam());
  EXPECT_EQ(flow.out_bytes, expected.out_bytes);
  EXPECT_EQ(flow.in_bytes, expected.in_bytes);
  EXPECT_EQ(flow.out_pkts, expected.out_pkts);
  EXPECT_EQ(flow.in_pkts, expected.in_pkts);
  EXPECT_EQ(flow.duration_ms(), spec.duration_ms);
  EXPECT_EQ(flow.syn_count, expected.syn_count);
  EXPECT_EQ(flow.ack_count, expected.ack_count);
}

INSTANTIATE_TEST_SUITE_P(States, TcpStateRoundTrip,
                         ::testing::Values(ConnState::kSF, ConnState::kS1,
                                           ConnState::kS0, ConnState::kRej,
                                           ConnState::kRsto, ConnState::kRstr,
                                           ConnState::kOth));

class NonTcpRoundTrip : public ::testing::TestWithParam<Protocol> {};

TEST_P(NonTcpRoundTrip, AssemblerReproducesSession) {
  const SessionSpec spec = base_session(GetParam(), ConnState::kNone);
  const NetflowRecord expected = to_netflow(spec);
  const auto flows = assemble_flows(decode_all(to_packets(spec)));
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows.front().protocol, GetParam());
  EXPECT_EQ(flows.front().state, ConnState::kNone);
  EXPECT_EQ(flows.front().out_bytes, expected.out_bytes);
  EXPECT_EQ(flows.front().in_bytes, expected.in_bytes);
  EXPECT_EQ(flows.front().out_pkts, expected.out_pkts);
  EXPECT_EQ(flows.front().in_pkts, expected.in_pkts);
}

INSTANTIATE_TEST_SUITE_P(Protocols, NonTcpRoundTrip,
                         ::testing::Values(Protocol::kUdp, Protocol::kIcmp));

// ---------------------------------------------------------- assembler

TEST(FlowAssemblerTest, TwoConcurrentFlowsKeptApart) {
  SessionSpec a = base_session(Protocol::kTcp, ConnState::kSF);
  SessionSpec b = base_session(Protocol::kTcp, ConnState::kSF);
  b.client_port = 50001;  // different 5-tuple
  auto packets = to_packets(a);
  const auto more = to_packets(b);
  packets.insert(packets.end(), more.begin(), more.end());
  std::sort(packets.begin(), packets.end(),
            [](const PcapPacket& x, const PcapPacket& y) {
              return x.timestamp_us < y.timestamp_us;
            });
  const auto flows = assemble_flows(decode_all(packets));
  EXPECT_EQ(flows.size(), 2u);
}

TEST(FlowAssemblerTest, IdleTimeoutSplitsFlows) {
  SessionSpec first = base_session(Protocol::kUdp, ConnState::kNone);
  SessionSpec second = first;
  // Same 5-tuple, but starting 10 minutes later (idle timeout is 60 s).
  second.start_us = first.start_us + 600'000'000;
  auto packets = to_packets(first);
  const auto more = to_packets(second);
  packets.insert(packets.end(), more.begin(), more.end());
  const auto flows = assemble_flows(decode_all(packets));
  EXPECT_EQ(flows.size(), 2u);
}

TEST(FlowAssemblerTest, DirectionFixedByFirstPacket) {
  const SessionSpec spec = base_session(Protocol::kTcp, ConnState::kSF);
  const auto flows = assemble_flows(decode_all(to_packets(spec)));
  ASSERT_EQ(flows.size(), 1u);
  // The client sent the first packet (SYN), so it is the originator even
  // though the server sent more bytes.
  EXPECT_EQ(flows.front().src_ip, spec.client_ip);
  EXPECT_GT(flows.front().in_bytes, flows.front().out_bytes);
}

TEST(FlowAssemblerTest, FinishSortsByFirstPacket) {
  SessionSpec late = base_session(Protocol::kUdp, ConnState::kNone);
  late.start_us = 50'000'000;
  SessionSpec early = base_session(Protocol::kUdp, ConnState::kNone);
  early.client_port = 50002;
  early.start_us = 1'000'000;
  auto packets = to_packets(late);
  const auto more = to_packets(early);
  packets.insert(packets.end(), more.begin(), more.end());
  std::sort(packets.begin(), packets.end(),
            [](const PcapPacket& x, const PcapPacket& y) {
              return x.timestamp_us < y.timestamp_us;
            });
  const auto flows = assemble_flows(decode_all(packets));
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_LT(flows[0].first_us, flows[1].first_us);
}

TEST(FlowAssemblerTest, OpenAndCompletedCounters) {
  FlowAssembler assembler;
  const SessionSpec spec = base_session(Protocol::kTcp, ConnState::kSF);
  for (const auto& packet : decode_all(to_packets(spec))) {
    assembler.add(packet);
  }
  EXPECT_EQ(assembler.open_flows(), 1u);
  EXPECT_EQ(assembler.completed_flows(), 0u);
  const auto flows = assembler.finish();
  EXPECT_EQ(flows.size(), 1u);
  EXPECT_EQ(assembler.open_flows(), 0u);
}

TEST(FlowAssemblerTest, SkipsUnsupportedProtocolPackets) {
  // Real captures carry GRE/ESP/etc. frames the flow model does not cover;
  // they must be counted and dropped, not crash the pipeline.
  FlowAssembler assembler;
  const auto before =
      MetricsRegistry::instance().counter("seed.skipped_packets").value();
  DecodedPacket odd;
  odd.timestamp_us = 1'000'000;
  odd.src_ip = 0x0a000001;
  odd.dst_ip = 0x0a000002;
  odd.protocol = 47;  // GRE
  odd.wire_bytes = 60;
  EXPECT_EQ(assembler.add(odd), 0u);
  EXPECT_EQ(assembler.open_flows(), 0u);
  EXPECT_EQ(assembler.skipped_packets(), 1u);
  EXPECT_EQ(
      MetricsRegistry::instance().counter("seed.skipped_packets").value(),
      before + 1);
  // Supported traffic around the skipped frame is unaffected.
  for (const auto& packet :
       decode_all(to_packets(base_session(Protocol::kUdp, ConnState::kNone)))) {
    assembler.add(packet);
  }
  EXPECT_EQ(assembler.finish().size(), 1u);
}

TEST(FlowAssemblerTest, ActiveTimeoutCutsLongFlow) {
  FlowAssemblerOptions options;
  options.idle_timeout_us = 3'600'000'000;  // effectively off
  options.active_timeout_us = 10'000'000;   // 10 s
  // One UDP "flow" that trickles a packet every 5 s for a minute.
  FlowAssembler assembler(options);
  FrameSpec frame;
  frame.src_ip = 1;
  frame.dst_ip = 2;
  frame.src_port = 1000;
  frame.dst_port = 2000;
  const auto bytes = build_udp_frame(frame);
  for (int i = 0; i < 12; ++i) {
    const auto packet = decode_frame(bytes.data(), bytes.size(),
                                     static_cast<std::uint32_t>(bytes.size()),
                                     5'000'000ull * i);
    ASSERT_TRUE(packet.has_value());
    assembler.add(*packet);
  }
  const auto flows = assembler.finish();
  EXPECT_GT(flows.size(), 3u);
  std::uint32_t total_pkts = 0;
  for (const auto& flow : flows) total_pkts += flow.out_pkts + flow.in_pkts;
  EXPECT_EQ(total_pkts, 12u);
}

// ---------------------------------------------------------- parallel shard

class ParallelAssemblyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelAssemblyTest, MatchesSerialFlowSequence) {
  // A realistic mixed capture, assembled serially and with N shards, must
  // yield the exact serial record sequence — not just the same multiset.
  // Both paths order finished flows by (first packet time, first packet
  // index), so the outputs are directly comparable element by element.
  TrafficModelConfig config;
  config.benign_sessions = 1'500;
  const auto packets =
      sessions_to_packets(TrafficModel(config).generate_benign());
  const auto decoded = decode_all(packets);

  ThreadPool pool(4);
  const auto serial = assemble_flows(decoded);
  const auto parallel = assemble_flows_parallel(decoded, pool, GetParam());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "flow " << i;
  }
}

TEST_P(ParallelAssemblyTest, MatchesSerialSequenceOnAttackTrace) {
  // Attack traffic stresses the split logic: SYN floods open thousands of
  // tiny flows, scans touch many 5-tuples once, and floods reuse one tuple
  // heavily. The sharded output must still equal the serial sequence.
  TrafficModelConfig config;
  config.benign_sessions = 800;
  config.client_hosts = 200;
  config.server_hosts = 40;
  auto sessions = TrafficModel(config).generate_benign();

  Rng rng(config.seed ^ 0xa77acULL);
  const auto add = [&](std::vector<SessionSpec> injected) {
    sessions.insert(sessions.end(), injected.begin(), injected.end());
  };
  SynFloodConfig syn;
  syn.victim_ip = 0x0a00000a;
  syn.flows = 800;
  syn.start_us = config.start_time_us;
  add(inject_syn_flood(syn, rng));
  HostScanConfig scan;
  scan.scanner_ip = 0xc6336401;
  scan.target_ip = 0x0a00000b;
  scan.start_us = config.start_time_us;
  add(inject_host_scan(scan, rng));
  UdpFloodConfig flood;
  flood.attacker_ip = 0xc6336403;
  flood.victim_ip = 0x0a00000c;
  flood.flows = 100;
  flood.pkts_per_flow = 50;
  flood.start_us = config.start_time_us;
  add(inject_udp_flood(flood, rng));

  const auto decoded = decode_all(sessions_to_packets(sessions));
  ThreadPool pool(4);
  const auto serial = assemble_flows(decoded);
  const auto parallel = assemble_flows_parallel(decoded, pool, GetParam());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ParallelAssemblyTest,
                         ::testing::Values(1, 2, 3, 8, 16));

TEST(ParallelAssemblyTest, OutputIsTimestampOrdered) {
  TrafficModelConfig config;
  config.benign_sessions = 600;
  const auto decoded = decode_all(
      sessions_to_packets(TrafficModel(config).generate_benign()));
  ThreadPool pool(4);
  const auto flows = assemble_flows_parallel(decoded, pool, 8);
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_GE(flows[i].first_us, flows[i - 1].first_us);
  }
}

TEST(ParallelAssemblyTest, ShardHashDirectionInvariant) {
  const SessionSpec spec = base_session(Protocol::kTcp, ConnState::kSF);
  const auto decoded = decode_all(to_packets(spec));
  ASSERT_GT(decoded.size(), 3u);
  // Packets of both directions hash to the same shard.
  const std::uint64_t expected = FlowAssembler::shard_hash(decoded.front());
  for (const auto& packet : decoded) {
    EXPECT_EQ(FlowAssembler::shard_hash(packet), expected);
  }
}

// ------------------------------------------------------------- ip strings

struct IpCase {
  std::uint32_t value;
  const char* text;
};

class IpStringTest : public ::testing::TestWithParam<IpCase> {};

TEST_P(IpStringTest, RoundTrips) {
  EXPECT_EQ(ip_to_string(GetParam().value), GetParam().text);
  EXPECT_EQ(ip_from_string(GetParam().text), GetParam().value);
}

INSTANTIATE_TEST_SUITE_P(Cases, IpStringTest,
                         ::testing::Values(IpCase{0, "0.0.0.0"},
                                           IpCase{0x0a000001, "10.0.0.1"},
                                           IpCase{0xc0a80101, "192.168.1.1"},
                                           IpCase{0xffffffff,
                                                  "255.255.255.255"}));

TEST(IpStringTest, RejectsMalformed) {
  EXPECT_THROW(ip_from_string("1.2.3"), CsbError);
  EXPECT_THROW(ip_from_string("1.2.3.4.5"), CsbError);
  EXPECT_THROW(ip_from_string("256.0.0.1"), CsbError);
  EXPECT_THROW(ip_from_string("a.b.c.d"), CsbError);
}

// ---------------------------------------------------------------- csv io

TEST(NetflowIoTest, RoundTrips) {
  const SessionSpec spec = base_session(Protocol::kTcp, ConnState::kRej);
  std::vector<NetflowRecord> records = {to_netflow(spec)};
  records.push_back(to_netflow(base_session(Protocol::kIcmp, ConnState::kNone)));
  std::stringstream buffer;
  save_netflow_csv(records, buffer);
  const auto loaded = load_netflow_csv(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], records[0]);
  EXPECT_EQ(loaded[1], records[1]);
}

TEST(NetflowIoTest, RejectsBadHeaderAndRow) {
  std::stringstream no_header("1,2,3\n");
  EXPECT_THROW(load_netflow_csv(no_header), CsbError);
  std::stringstream bad_row(
      "src_ip,dst_ip,protocol,src_port,dst_port,first_us,last_us,out_bytes,"
      "in_bytes,out_pkts,in_pkts,syn_count,ack_count,state\n1,2,3\n");
  EXPECT_THROW(load_netflow_csv(bad_row), CsbError);
}

}  // namespace
}  // namespace csb
