// Unit tests for src/gen: PGPBA growth and determinism, KronFit recovery,
// stochastic/deterministic Kronecker, PGSK sizing, property assignment, and
// the baseline generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "gen/baselines.hpp"
#include "gen/fast_samplers.hpp"
#include "gen/kronecker.hpp"
#include "gen/kronfit.hpp"
#include "gen/materialize.hpp"
#include "mr/dataset.hpp"
#include "gen/pgpba.hpp"
#include "gen/pgsk.hpp"
#include "gen/properties.hpp"
#include "graph/algorithms.hpp"
#include "seed/seed.hpp"
#include "stats/power_law.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace csb {
namespace {

SeedBundle small_seed(std::uint64_t sessions = 800) {
  TrafficModelConfig config;
  config.benign_sessions = sessions;
  config.client_hosts = 120;
  config.server_hosts = 30;
  return build_seed_from_netflow(
      sessions_to_netflow(TrafficModel(config).generate_benign()));
}

ClusterConfig four_cores() { return ClusterConfig{.nodes = 2, .cores_per_node = 2}; }

// ------------------------------------------------------------- properties

TEST(AssignPropertiesTest, FillsEveryEdgeFromSeedSupport) {
  const SeedBundle seed = small_seed(200);
  PropertyGraph g(10);
  for (int i = 0; i < 200; ++i) g.add_edge(i % 10, (i * 3) % 10);
  ClusterSim cluster(four_cores());
  assign_properties(g, seed.profile, cluster, 42);
  ASSERT_TRUE(g.has_properties());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const EdgeProperties p = g.edge_properties(e);
    EXPECT_GT(seed.profile.in_bytes().pmf(static_cast<double>(p.in_bytes)),
              0.0);
  }
}

TEST(AssignPropertiesTest, DeterministicPerSeedValue) {
  const SeedBundle seed = small_seed(200);
  PropertyGraph a(5);
  PropertyGraph b(5);
  for (int i = 0; i < 50; ++i) {
    a.add_edge(i % 5, (i + 1) % 5);
    b.add_edge(i % 5, (i + 1) % 5);
  }
  ClusterSim cluster(four_cores());
  assign_properties(a, seed.profile, cluster, 7);
  assign_properties(b, seed.profile, cluster, 7);
  EXPECT_EQ(a, b);
  assign_properties(b, seed.profile, cluster, 8);
  EXPECT_NE(a, b);
}

// ----------------------------------------------------------------- PGPBA

TEST(PgpbaTest, ReachesDesiredSize) {
  const SeedBundle seed = small_seed();
  ClusterSim cluster(four_cores());
  PgpbaOptions options;
  options.desired_edges = 4 * seed.graph.num_edges();
  options.fraction = 0.5;
  const GenResult result =
      pgpba_generate(seed.graph, seed.profile, cluster, options);
  EXPECT_GE(result.graph.num_edges(), options.desired_edges);
  EXPECT_GT(result.graph.num_vertices(), seed.graph.num_vertices());
  EXPECT_GT(result.iterations, 0u);
  EXPECT_TRUE(result.graph.has_properties());
}

TEST(PgpbaTest, SparkParityGrowthFactorMatchesFraction) {
  const SeedBundle seed = small_seed();
  ClusterSim cluster(four_cores());
  PgpbaOptions options;
  options.desired_edges = seed.graph.num_edges() + 1;  // exactly 1 iteration
  options.fraction = 0.5;
  options.with_properties = false;
  const GenResult result =
      pgpba_generate(seed.graph, seed.profile, cluster, options);
  EXPECT_EQ(result.iterations, 1u);
  const double growth = static_cast<double>(result.graph.num_edges()) /
                        static_cast<double>(seed.graph.num_edges());
  // Spark-parity: one new edge per sampled edge -> growth = 1 + fraction.
  EXPECT_NEAR(growth, 1.5, 0.05);
}

TEST(PgpbaTest, FractionTwoDoublesPerIteration) {
  // The paper's Kronecker-parity configuration.
  const SeedBundle seed = small_seed();
  ClusterSim cluster(four_cores());
  PgpbaOptions options;
  options.desired_edges = seed.graph.num_edges() + 1;
  options.fraction = 2.0;
  options.with_properties = false;
  const GenResult result =
      pgpba_generate(seed.graph, seed.profile, cluster, options);
  const double growth = static_cast<double>(result.graph.num_edges()) /
                        static_cast<double>(seed.graph.num_edges());
  EXPECT_NEAR(growth, 3.0, 0.1);  // 1 + fraction
}

TEST(PgpbaTest, DeterministicPerSeedValue) {
  const SeedBundle seed = small_seed(300);
  PgpbaOptions options;
  options.desired_edges = 2 * seed.graph.num_edges();
  options.fraction = 0.4;
  ClusterSim c1(four_cores());
  ClusterSim c2(four_cores());
  const GenResult a = pgpba_generate(seed.graph, seed.profile, c1, options);
  const GenResult b = pgpba_generate(seed.graph, seed.profile, c2, options);
  EXPECT_EQ(a.graph, b.graph);
}

TEST(PgpbaTest, DegreeSamplingModeGrowsFaster) {
  const SeedBundle seed = small_seed(300);
  PgpbaOptions spark;
  spark.desired_edges = seed.graph.num_edges() + 1;
  spark.fraction = 0.2;
  spark.with_properties = false;
  PgpbaOptions degree = spark;
  degree.mode = PgpbaAttachMode::kDegreeSampling;
  ClusterSim c1(four_cores());
  ClusterSim c2(four_cores());
  const GenResult a = pgpba_generate(seed.graph, seed.profile, c1, spark);
  const GenResult b = pgpba_generate(seed.graph, seed.profile, c2, degree);
  // Degree mode adds sampled in+out fans per new vertex; with a mean total
  // degree > 2 it must beat the one-edge-per-vertex spark mode.
  EXPECT_GT(b.graph.num_edges(), a.graph.num_edges());
}

TEST(PgpbaTest, PreferentialAttachmentSkewsDegrees) {
  // The synthetic graph must contain vertices with far higher in-degree
  // than the mean (scale-free behavior).
  const SeedBundle seed = small_seed();
  ClusterSim cluster(four_cores());
  PgpbaOptions options;
  options.desired_edges = 8 * seed.graph.num_edges();
  options.fraction = 1.0;
  options.with_properties = false;
  const GenResult result =
      pgpba_generate(seed.graph, seed.profile, cluster, options);
  const auto degrees = in_degrees(result.graph);
  const double mean =
      static_cast<double>(result.graph.num_edges()) / degrees.size();
  const std::uint64_t max_degree =
      *std::max_element(degrees.begin(), degrees.end());
  EXPECT_GT(static_cast<double>(max_degree), 20.0 * mean);
}

TEST(PgpbaTest, StructureVsPropertyTimeSplit) {
  const SeedBundle seed = small_seed(300);
  ClusterSim cluster(four_cores());
  PgpbaOptions options;
  options.desired_edges = 3 * seed.graph.num_edges();
  const GenResult result =
      pgpba_generate(seed.graph, seed.profile, cluster, options);
  EXPECT_GT(result.structure_seconds, 0.0);
  EXPECT_GT(result.property_seconds, 0.0);
  EXPECT_GE(result.metrics.simulated_seconds,
            result.structure_seconds + result.property_seconds);
}

TEST(PgpbaTest, RejectsBadOptions) {
  const SeedBundle seed = small_seed(200);
  ClusterSim cluster(four_cores());
  PgpbaOptions options;
  options.desired_edges = 0;
  EXPECT_THROW(pgpba_generate(seed.graph, seed.profile, cluster, options),
               CsbError);
  options.desired_edges = 100;
  options.fraction = 0.0;
  EXPECT_THROW(pgpba_generate(seed.graph, seed.profile, cluster, options),
               CsbError);
}

// --------------------------------------------------------------- KronFit

TEST(KronFitTest, RecoversDenseCornerOnKroneckerGraph) {
  // Generate from a known initiator, then refit: the dense corner and the
  // overall edge budget must be recovered (loose tolerances — KronFit is a
  // stochastic optimizer).
  Initiator truth;
  truth.theta = {{{0.9, 0.6}, {0.4, 0.2}}};
  ClusterSim cluster(four_cores());
  StochasticKroneckerOptions gen;
  gen.initiator = truth;
  gen.k = 9;  // 512 vertices, ~(2.1)^9 ~ 800 edges
  gen.seed = 5;
  const auto edges = stochastic_kronecker_edges(cluster, gen);
  PropertyGraph graph(1ULL << gen.k);
  for (std::size_t p = 0; p < edges.num_partitions(); ++p) {
    for (const Edge& e : edges.partition(p)) graph.add_edge(e.src, e.dst);
  }

  KronFitOptions options;
  options.gradient_iterations = 30;
  options.swaps_per_iteration = 500;
  options.burn_in_swaps = 2000;
  const KronFitResult fit = kronfit(graph, options);
  EXPECT_EQ(fit.k, 9u);
  // theta00 is the densest corner by construction (canonicalized).
  EXPECT_GT(fit.initiator.theta[0][0], fit.initiator.theta[1][1]);
  // The fitted expected edge count should be within 2x of the truth.
  const double expected = fit.initiator.expected_edges(fit.k);
  const double actual = static_cast<double>(graph.num_edges());
  EXPECT_GT(expected, actual / 2.0);
  EXPECT_LT(expected, actual * 2.0);
}

TEST(KronFitTest, LikelihoodImprovesOverInit) {
  const SeedBundle seed = small_seed(400);
  const PropertyGraph simple = simplify(seed.graph);
  KronFitOptions fast;
  fast.gradient_iterations = 0;
  fast.burn_in_swaps = 100;
  const double ll_init = kronfit(simple, fast).log_likelihood;
  KronFitOptions tuned;
  tuned.gradient_iterations = 25;
  tuned.swaps_per_iteration = 300;
  tuned.burn_in_swaps = 2000;
  const double ll_fit = kronfit(simple, tuned).log_likelihood;
  EXPECT_GT(ll_fit, ll_init);
}

TEST(KronFitTest, IncrementalLikelihoodMatchesRecomputation) {
  // The fitter maintains per-edge cell counts and the likelihood term sum
  // incrementally across thousands of Metropolis swaps and theta refreshes.
  // Recomputing everything from sigma at the optimum must agree to
  // accumulation error: any stale cache entry or drifted sum shows up here.
  const SeedBundle seed = small_seed(400);
  const PropertyGraph simple = simplify(seed.graph);
  KronFitOptions options;
  options.gradient_iterations = 15;
  options.swaps_per_iteration = 400;
  options.burn_in_swaps = 2000;
  const KronFitLikelihoodCheck check =
      kronfit_likelihood_check(simple, options);
  EXPECT_NEAR(check.incremental, check.recomputed,
              1e-9 * std::max(1.0, std::abs(check.recomputed)));
}

TEST(KronFitTest, ChunkedPassesBitIdenticalAcrossThreadCounts) {
  // The refresh/gradient passes chunk at a fixed 4096-edge granularity and
  // reduce partial sums in chunk-index order, so the result is a function
  // of the chunking alone — never of how many workers ran the chunks.
  const SeedBundle seed = small_seed(400);
  const PropertyGraph simple = simplify(seed.graph);
  KronFitOptions options;
  options.gradient_iterations = 8;
  options.swaps_per_iteration = 200;
  options.burn_in_swaps = 1000;
  const KronFitResult serial = kronfit(simple, options);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    options.pool = &pool;
    const KronFitResult threaded = kronfit(simple, options);
    EXPECT_EQ(serial.initiator.theta, threaded.initiator.theta)
        << threads << " threads";
    EXPECT_EQ(serial.log_likelihood, threaded.log_likelihood)
        << threads << " threads";
  }
}

TEST(KronFitTest, ClusterAttachedRunMatchesStandalone) {
  // pgsk_generate hands kronfit its ClusterSim: the passes become stages
  // and the Metropolis chain books "kronfit:driver" serial segments, but
  // the fitted result must be the same bits as a standalone run.
  const SeedBundle seed = small_seed(400);
  const PropertyGraph simple = simplify(seed.graph);
  KronFitOptions options;
  options.gradient_iterations = 8;
  options.swaps_per_iteration = 200;
  options.burn_in_swaps = 1000;
  const KronFitResult standalone = kronfit(simple, options);
  ClusterSim cluster(four_cores());
  options.cluster = &cluster;
  const KronFitResult attached = kronfit(simple, options);
  EXPECT_EQ(standalone.initiator.theta, attached.initiator.theta);
  EXPECT_EQ(standalone.log_likelihood, attached.log_likelihood);
  // The decomposition books real driver-serial time and stage work.
  double driver_s = 0.0;
  for (const SerialSegment& segment : cluster.metrics().serial_segments) {
    if (segment.name == "kronfit:driver") driver_s += segment.seconds;
  }
  EXPECT_GT(driver_s, 0.0);
  EXPECT_GT(cluster.metrics().simulated_seconds, driver_s);
}

TEST(KronFitTest, ShardedBurnInKeepsIncrementalLikelihoodHonest) {
  // The sharded burn-in mutates sigma through per-shard chains whose cache
  // reconciliation (recount + refresh) must leave the incremental state
  // exactly consistent with a from-scratch recomputation.
  const SeedBundle seed = small_seed(400);
  const PropertyGraph simple = simplify(seed.graph);
  ThreadPool pool(4);
  KronFitOptions options;
  options.gradient_iterations = 15;
  options.swaps_per_iteration = 400;
  options.burn_in_swaps = 2000;
  options.burn_in_shards = 4;
  options.pool = &pool;
  const KronFitLikelihoodCheck check =
      kronfit_likelihood_check(simple, options);
  EXPECT_NEAR(check.incremental, check.recomputed,
              1e-9 * std::max(1.0, std::abs(check.recomputed)));
}

TEST(KronFitTest, DeterministicPerSeed) {
  const SeedBundle seed = small_seed(300);
  const PropertyGraph simple = simplify(seed.graph);
  KronFitOptions options;
  options.gradient_iterations = 5;
  options.swaps_per_iteration = 200;
  options.burn_in_swaps = 500;
  const KronFitResult a = kronfit(simple, options);
  const KronFitResult b = kronfit(simple, options);
  EXPECT_EQ(a.initiator.theta, b.initiator.theta);
  EXPECT_EQ(a.log_likelihood, b.log_likelihood);
  options.seed ^= 1;
  const KronFitResult c = kronfit(simple, options);
  EXPECT_NE(a.initiator.theta, c.initiator.theta);
}

TEST(KronFitTest, ThetaStaysInBounds) {
  const SeedBundle seed = small_seed(300);
  const KronFitResult fit = kronfit(simplify(seed.graph));
  for (const auto& row : fit.initiator.theta) {
    for (const double t : row) {
      EXPECT_GE(t, 0.02);
      EXPECT_LE(t, 0.98);
    }
  }
}

TEST(KronFitTest, RejectsDegenerateInput) {
  PropertyGraph empty(4);
  EXPECT_THROW(kronfit(empty), CsbError);
  PropertyGraph single(1);
  EXPECT_THROW(kronfit(single), CsbError);
}

// -------------------------------------------------------------- Kronecker

TEST(StochasticKroneckerTest, ReachesTargetDistinctEdges) {
  ClusterSim cluster(four_cores());
  StochasticKroneckerOptions options;
  options.initiator.theta = {{{0.9, 0.55}, {0.45, 0.25}}};
  options.k = 10;
  options.edges_to_place = 1500;
  const auto edges = stochastic_kronecker_edges(cluster, options);
  EXPECT_GE(edges.count(), 1500u);
  // All endpoints must fit in 2^k vertices, and edges must be distinct.
  std::set<std::pair<VertexId, VertexId>> seen;
  for (std::size_t p = 0; p < edges.num_partitions(); ++p) {
    for (const Edge& e : edges.partition(p)) {
      EXPECT_LT(e.src, 1ULL << 10);
      EXPECT_LT(e.dst, 1ULL << 10);
      EXPECT_TRUE(seen.emplace(e.src, e.dst).second) << "duplicate edge";
    }
  }
}

TEST(StochasticKroneckerTest, DefaultTargetIsExpectedEdges) {
  ClusterSim cluster(four_cores());
  StochasticKroneckerOptions options;
  options.initiator.theta = {{{0.8, 0.5}, {0.5, 0.2}}};
  options.k = 8;
  const auto edges = stochastic_kronecker_edges(cluster, options);
  const double expected = options.initiator.expected_edges(8);
  EXPECT_GE(static_cast<double>(edges.count()), expected * 0.99);
  EXPECT_LE(static_cast<double>(edges.count()), expected * 1.5);
}

TEST(StochasticKroneckerTest, RejectsImpossibleTargets) {
  ClusterSim cluster(four_cores());
  StochasticKroneckerOptions options;
  options.k = 2;  // only 16 possible distinct edges
  options.edges_to_place = 100;
  EXPECT_THROW(stochastic_kronecker_edges(cluster, options), CsbError);
}

TEST(DeterministicKroneckerTest, AllOnesInitiatorGivesCompleteGraph) {
  const auto graph =
      deterministic_kronecker({{{true, true}, {true, true}}}, 2);
  EXPECT_EQ(graph.num_vertices(), 4u);
  EXPECT_EQ(graph.num_edges(), 16u);
}

TEST(DeterministicKroneckerTest, IdentityInitiatorGivesSelfLoops) {
  const auto graph =
      deterministic_kronecker({{{true, false}, {false, true}}}, 3);
  EXPECT_EQ(graph.num_vertices(), 8u);
  EXPECT_EQ(graph.num_edges(), 8u);  // exactly the diagonal
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_EQ(graph.edge_src(e), graph.edge_dst(e));
  }
}

TEST(DeterministicKroneckerTest, EdgeCountIsInitiatorPower) {
  // Initiator with 3 ones -> 3^k edges.
  const auto graph =
      deterministic_kronecker({{{true, true}, {true, false}}}, 4);
  EXPECT_EQ(graph.num_edges(), 81u);
}

// ------------------------------------------------------------------ PGSK

TEST(PgskPlanTest, SizingMath) {
  const PgskPlan plan = plan_pgsk(2.0, 4.0, 1024);
  // kron target = 1024/4 = 256 = 2^8 -> k = 8, edges = 2^8.
  EXPECT_EQ(plan.k, 8u);
  EXPECT_EQ(plan.kron_edges, 256u);
}

TEST(PgskPlanTest, DuplicationBelowOneClamped) {
  const PgskPlan a = plan_pgsk(2.0, 0.5, 1024);
  const PgskPlan b = plan_pgsk(2.0, 1.0, 1024);
  EXPECT_EQ(a.k, b.k);
}

TEST(PgskTest, GeneratesApproximatelyDesiredSize) {
  const SeedBundle seed = small_seed();
  ClusterSim cluster(four_cores());
  PgskOptions options;
  options.desired_edges = 3 * seed.graph.num_edges();
  options.fit.gradient_iterations = 10;
  options.fit.swaps_per_iteration = 200;
  options.fit.burn_in_swaps = 500;
  const GenResult result =
      pgsk_generate(seed.graph, seed.profile, cluster, options);
  const auto edges = result.graph.num_edges();
  // Probabilistic sizing: within a factor ~2 of the request.
  EXPECT_GT(edges, options.desired_edges / 2);
  EXPECT_LT(edges, options.desired_edges * 3);
  EXPECT_TRUE(result.graph.has_properties());
}

TEST(PgskTest, CanGenerateSmallerThanSeed) {
  // The paper's Fig. 6 PGSK curve starts at ~100 edges from a ~2M seed.
  const SeedBundle seed = small_seed();
  ClusterSim cluster(four_cores());
  PgskOptions options;
  options.desired_edges = 100;
  options.fit.gradient_iterations = 5;
  options.fit.swaps_per_iteration = 100;
  options.fit.burn_in_swaps = 200;
  const GenResult result =
      pgsk_generate(seed.graph, seed.profile, cluster, options);
  EXPECT_LT(result.graph.num_edges(), seed.graph.num_edges() / 2);
}

TEST(PgskTest, VertexCountIsPowerOfTwo) {
  const SeedBundle seed = small_seed(300);
  ClusterSim cluster(four_cores());
  PgskOptions options;
  options.desired_edges = 2000;
  options.fit.gradient_iterations = 5;
  options.fit.swaps_per_iteration = 100;
  options.fit.burn_in_swaps = 200;
  const GenResult result =
      pgsk_generate(seed.graph, seed.profile, cluster, options);
  const std::uint64_t n = result.graph.num_vertices();
  EXPECT_EQ(n & (n - 1), 0u);
}

TEST(PgskTest, MetricsIncludeShuffleStages) {
  const SeedBundle seed = small_seed(300);
  ClusterSim cluster(four_cores());
  PgskOptions options;
  options.desired_edges = 2000;
  options.fit.gradient_iterations = 5;
  options.fit.swaps_per_iteration = 100;
  options.fit.burn_in_swaps = 200;
  const GenResult result =
      pgsk_generate(seed.graph, seed.profile, cluster, options);
  EXPECT_GT(result.metrics.stages, 2u);
  EXPECT_GT(result.metrics.serial_seconds, 0.0);  // kronfit is driver-side
}

// -------------------------------------------------------------- baselines

TEST(ClassicBaTest, EdgeCountAndDegreeSkew) {
  const auto graph = classic_barabasi_albert(3000, 3, 9);
  EXPECT_EQ(graph.num_vertices(), 3000u);
  // m0 ring (4 edges) + 3 per added vertex.
  EXPECT_EQ(graph.num_edges(), 4u + 3u * (3000u - 4u));
  const auto degrees = total_degrees(graph);
  std::vector<double> samples(degrees.begin(), degrees.end());
  const double alpha = fit_power_law_alpha(samples, 6.0);
  // BA theory: alpha -> 3 for total degree.
  EXPECT_GT(alpha, 2.0);
  EXPECT_LT(alpha, 4.0);
}

TEST(ClassicBaTest, RejectsBadArguments) {
  EXPECT_THROW(classic_barabasi_albert(5, 0, 1), CsbError);
  EXPECT_THROW(classic_barabasi_albert(3, 3, 1), CsbError);
}

TEST(ErdosRenyiTest, ExactEdgeCountAndNoSkew) {
  const auto graph = erdos_renyi_gnm(1000, 5000, 4);
  EXPECT_EQ(graph.num_edges(), 5000u);
  const auto degrees = total_degrees(graph);
  const std::uint64_t max_degree =
      *std::max_element(degrees.begin(), degrees.end());
  // Poisson(10) tail: max degree stays modest, nothing scale-free.
  EXPECT_LT(max_degree, 40u);
}

// ------------------------------------------------------------ materialize

TEST(MaterializeTest, CollectsAllPartitions) {
  ClusterSim cluster(four_cores());
  std::vector<std::vector<Edge>> parts = {
      {{0, 1}, {1, 2}}, {}, {{2, 3}}, {{3, 0}, {0, 2}}};
  const Dataset<Edge> edges(cluster, std::move(parts));
  const PropertyGraph graph = materialize_graph(edges, 4, false, cluster);
  EXPECT_EQ(graph.num_vertices(), 4u);
  EXPECT_EQ(graph.num_edges(), 5u);
  EXPECT_FALSE(graph.has_properties());
  EXPECT_EQ(graph.edge_src(0), 0u);
  EXPECT_EQ(graph.edge_dst(4), 2u);
}

TEST(MaterializeTest, WithPropertiesAttachesColumns) {
  ClusterSim cluster(four_cores());
  std::vector<std::vector<Edge>> parts = {{{0, 1}}};
  const Dataset<Edge> edges(cluster, std::move(parts));
  const PropertyGraph graph = materialize_graph(edges, 2, true, cluster);
  EXPECT_TRUE(graph.has_properties());
  EXPECT_EQ(graph.protocols().size(), 1u);
}

TEST(MaterializeTest, RejectsOutOfRangeEndpoints) {
  ClusterSim cluster(four_cores());
  std::vector<std::vector<Edge>> parts = {{{0, 9}}};
  const Dataset<Edge> edges(cluster, std::move(parts));
  EXPECT_THROW(materialize_graph(edges, 2, false, cluster), CsbError);
}

TEST(MaterializeTest, EmptyDatasetGivesEmptyGraph) {
  ClusterSim cluster(four_cores());
  std::vector<std::vector<Edge>> parts(3);
  const Dataset<Edge> edges(cluster, std::move(parts));
  const PropertyGraph graph = materialize_graph(edges, 5, false, cluster);
  EXPECT_EQ(graph.num_vertices(), 5u);
  EXPECT_EQ(graph.num_edges(), 0u);
}

// --------------------------------------------------------- determinism

TEST(DeterminismTest, PgskSameSeedSameGraph) {
  const SeedBundle seed = small_seed(300);
  PgskOptions options;
  options.desired_edges = 1500;
  options.fit.gradient_iterations = 5;
  options.fit.swaps_per_iteration = 100;
  options.fit.burn_in_swaps = 200;
  ClusterSim c1(four_cores());
  ClusterSim c2(four_cores());
  const GenResult a = pgsk_generate(seed.graph, seed.profile, c1, options);
  const GenResult b = pgsk_generate(seed.graph, seed.profile, c2, options);
  // Structure is deterministic up to the distinct() partition ordering; the
  // edge multiset must match exactly.
  auto edges_of = [](const PropertyGraph& g) {
    std::vector<std::pair<VertexId, VertexId>> edges;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      edges.emplace_back(g.edge_src(e), g.edge_dst(e));
    }
    std::sort(edges.begin(), edges.end());
    return edges;
  };
  EXPECT_EQ(edges_of(a.graph), edges_of(b.graph));
}

TEST(DeterminismTest, KroneckerEdgesDeterministicPerSeed) {
  ClusterSim c1(four_cores());
  ClusterSim c2(four_cores());
  StochasticKroneckerOptions options;
  options.k = 9;
  options.edges_to_place = 400;
  options.partitions = 4;
  const auto a = stochastic_kronecker_edges(c1, options).collect();
  options.seed = options.seed;  // same seed
  const auto b = stochastic_kronecker_edges(c2, options).collect();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  options.seed = 99;  // different seed -> different edges
  const auto c = stochastic_kronecker_edges(c2, options).collect();
  bool any_diff = c.size() != a.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = !(a[i] == c[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(DeterminismTest, InitiatorExpectedEdgesMath) {
  Initiator init;
  init.theta = {{{0.5, 0.5}, {0.5, 0.5}}};
  EXPECT_DOUBLE_EQ(init.sum(), 2.0);
  EXPECT_DOUBLE_EQ(init.sum_sq(), 1.0);
  EXPECT_DOUBLE_EQ(init.expected_edges(10), 1024.0);
}

TEST(PgskTest, WithoutPropertiesLeavesStructureOnly) {
  const SeedBundle seed = small_seed(300);
  ClusterSim cluster(four_cores());
  PgskOptions options;
  options.desired_edges = 1000;
  options.with_properties = false;
  options.fit.gradient_iterations = 5;
  options.fit.swaps_per_iteration = 100;
  options.fit.burn_in_swaps = 200;
  const GenResult result =
      pgsk_generate(seed.graph, seed.profile, cluster, options);
  EXPECT_FALSE(result.graph.has_properties());
}

TEST(DeterministicKroneckerTest, RejectsExcessiveOrder) {
  EXPECT_THROW(deterministic_kronecker({{{true, true}, {true, true}}}, 13),
               CsbError);
  EXPECT_THROW(deterministic_kronecker({{{true, true}, {true, true}}}, 0),
               CsbError);
}

TEST(SbmTest, CommunityStructureRespectsMixing) {
  // Two blocks with strong diagonal mixing: most edges stay inside blocks.
  const std::vector<std::uint64_t> sizes = {50, 50};
  const std::vector<double> mixing = {0.9, 0.1, 0.1, 0.9};
  const auto graph = stochastic_block_model(sizes, mixing, 20'000, 3);
  EXPECT_EQ(graph.num_vertices(), 100u);
  EXPECT_EQ(graph.num_edges(), 20'000u);
  std::uint64_t intra = 0;
  const auto src = graph.sources();
  const auto dst = graph.destinations();
  for (std::size_t e = 0; e < src.size(); ++e) {
    if ((src[e] < 50) == (dst[e] < 50)) ++intra;
  }
  EXPECT_NEAR(static_cast<double>(intra) / 20'000.0, 0.9, 0.02);
}

TEST(SbmTest, EndpointsStayInChosenBlocks) {
  // Off-diagonal-only mixing: every edge crosses blocks.
  const std::vector<std::uint64_t> sizes = {10, 30};
  const std::vector<double> mixing = {0.0, 1.0, 0.0, 0.0};
  const auto graph = stochastic_block_model(sizes, mixing, 2'000, 4);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    EXPECT_LT(graph.edge_src(e), 10u);
    EXPECT_GE(graph.edge_dst(e), 10u);
  }
}

TEST(SbmTest, RejectsBadConfig) {
  const std::vector<std::uint64_t> sizes = {10, 10};
  EXPECT_THROW(
      stochastic_block_model(sizes, std::vector<double>{1.0}, 10, 1),
      CsbError);
  EXPECT_THROW(stochastic_block_model(std::vector<std::uint64_t>{},
                                      std::vector<double>{}, 10, 1),
               CsbError);
}

TEST(RmatTest, ProducesSkewedDegrees) {
  const auto graph = rmat(12, 40'000, RmatParams{}, 5);
  EXPECT_EQ(graph.num_vertices(), 1ULL << 12);
  EXPECT_EQ(graph.num_edges(), 40'000u);
  const auto degrees = total_degrees(graph);
  const std::uint64_t max_degree =
      *std::max_element(degrees.begin(), degrees.end());
  const double mean = 2.0 * 40'000.0 / static_cast<double>(1ULL << 12);
  // Graph500 parameters concentrate mass at low ids: a real hub exists.
  EXPECT_GT(static_cast<double>(max_degree), 20.0 * mean);
  // The hub lives in the dense (low-id) corner.
  const auto argmax = std::distance(
      degrees.begin(), std::max_element(degrees.begin(), degrees.end()));
  EXPECT_LT(argmax, 64);
}

TEST(RmatTest, DeterministicPerSeed) {
  const auto a = rmat(8, 1'000, RmatParams{}, 6);
  const auto b = rmat(8, 1'000, RmatParams{}, 6);
  EXPECT_EQ(a, b);
  const auto c = rmat(8, 1'000, RmatParams{}, 7);
  EXPECT_NE(a, c);
}

TEST(RmatTest, RejectsBadParams) {
  RmatParams bad;
  bad.a = 0.9;  // no longer sums to 1
  EXPECT_THROW(rmat(8, 100, bad, 1), CsbError);
  RmatParams noisy;
  noisy.noise = 1.5;
  EXPECT_THROW(rmat(8, 100, noisy, 1), CsbError);
  EXPECT_THROW(rmat(0, 100, RmatParams{}, 1), CsbError);
}

TEST(ChungLuTest, DegreesFollowWeights) {
  std::vector<double> weights(100, 1.0);
  weights[0] = 50.0;  // one heavy vertex
  const auto graph = chung_lu(weights, 20000, 11);
  const auto degrees = total_degrees(graph);
  const double expected_share = 50.0 / (99.0 + 50.0);
  const double observed_share =
      static_cast<double>(degrees[0]) / (2.0 * graph.num_edges());
  EXPECT_NEAR(observed_share, expected_share, 0.05);
}

// ---------------------------------------------------------- fast samplers

TEST(BernoulliLanesTest, LaneMeanMatchesProbability) {
  Rng rng(7);
  const std::uint64_t threshold = bernoulli_threshold(0.3);
  std::uint64_t ones = 0;
  constexpr int kTrials = 4000;
  for (int t = 0; t < kTrials; ++t) {
    ones += static_cast<std::uint64_t>(
        std::popcount(bernoulli_lanes(rng, threshold)));
  }
  EXPECT_NEAR(static_cast<double>(ones) / (64.0 * kTrials), 0.3, 0.01);
  EXPECT_EQ(bernoulli_lanes(rng, bernoulli_threshold(0.0)), 0u);
  EXPECT_EQ(bernoulli_lanes(rng, bernoulli_threshold(1.0)), ~0ULL);
}

TEST(ChungLuLevelsTest, CleanModelIsLevelUniform) {
  const Initiator initiator;  // default theta
  const ChungLuLevels levels = chung_lu_levels(initiator, 8, 0.0, 42);
  ASSERT_EQ(levels.src_threshold.size(), 8u);
  for (std::size_t l = 1; l < 8; ++l) {
    EXPECT_EQ(levels.src_threshold[l], levels.src_threshold[0]);
    EXPECT_EQ(levels.dst_threshold[l], levels.dst_threshold[0]);
  }
  // Default initiator row share (c+d)/sum = 0.6/2.0.
  const double p =
      static_cast<double>(levels.src_threshold[0] >> 11) * 0x1.0p-53;
  EXPECT_NEAR(p, 0.3, 1e-12);
}

TEST(ChungLuLevelsTest, NoiseVariesLevelsDeterministically) {
  const Initiator initiator;
  const ChungLuLevels a = chung_lu_levels(initiator, 12, 0.2, 42);
  const ChungLuLevels b = chung_lu_levels(initiator, 12, 0.2, 42);
  EXPECT_EQ(a.src_threshold, b.src_threshold);
  EXPECT_EQ(a.dst_threshold, b.dst_threshold);
  // With noise the per-level probabilities must actually differ.
  bool varies = false;
  for (std::size_t l = 1; l < 12; ++l) {
    varies |= a.src_threshold[l] != a.src_threshold[0];
  }
  EXPECT_TRUE(varies);
  EXPECT_THROW(chung_lu_levels(initiator, 4, 0.5, 1), CsbError);
}

TEST(BallDropTest, ByteIdenticalAcrossPoolSizes) {
  const ChungLuLevels levels = chung_lu_levels(Initiator{}, 12, 0.1, 9);
  const auto serial = chung_lu_ball_drop(levels, 50'000, 9, 1024, nullptr);
  ASSERT_EQ(serial.size(), 50'000u);
  for (const std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(chung_lu_ball_drop(levels, 50'000, 9, 1024, &pool), serial)
        << threads << " threads";
  }
}

TEST(PgskFastTest, GeneratesApproximatelyDesiredSize) {
  const SeedBundle seed = small_seed(400);
  ClusterSim cluster(four_cores());
  PgskFastOptions options;
  options.desired_edges = 4000;
  options.with_properties = false;
  options.fit.gradient_iterations = 5;
  options.fit.swaps_per_iteration = 100;
  options.fit.burn_in_swaps = 200;
  const GenResult result =
      pgsk_fast_generate(seed.graph, seed.profile, cluster, options);
  EXPECT_GT(result.graph.num_edges(), options.desired_edges / 3);
  EXPECT_LT(result.graph.num_edges(), options.desired_edges * 3);
  EXPECT_TRUE(std::has_single_bit(result.graph.num_vertices()));
}

TEST(PgskFastTest, ByteIdenticalAcrossPoolSizes) {
  const SeedBundle seed = small_seed(400);
  PgskFastOptions options;
  options.desired_edges = 3000;
  options.fit.gradient_iterations = 4;
  options.fit.swaps_per_iteration = 100;
  options.fit.burn_in_swaps = 200;
  ClusterSim baseline_cluster(four_cores());
  const GenResult baseline =
      pgsk_fast_generate(seed.graph, seed.profile, baseline_cluster, options);
  for (const std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ClusterSim cluster(four_cores(), pool);
    const GenResult result =
        pgsk_fast_generate(seed.graph, seed.profile, cluster, options);
    EXPECT_EQ(result.graph, baseline.graph) << threads << " threads";
  }
}

TEST(PgskFastTest, NoisyVariantIsDeterministicAndDistinct) {
  const SeedBundle seed = small_seed(400);
  PgskFastOptions options;
  options.desired_edges = 3000;
  options.with_properties = false;
  options.fit.gradient_iterations = 4;
  options.fit.swaps_per_iteration = 100;
  options.fit.burn_in_swaps = 200;
  ClusterSim c1(four_cores());
  const GenResult clean =
      pgsk_fast_generate(seed.graph, seed.profile, c1, options);
  options.noise = 0.15;
  ClusterSim c2(four_cores());
  ClusterSim c3(four_cores());
  const GenResult noisy_a =
      pgsk_fast_generate(seed.graph, seed.profile, c2, options);
  const GenResult noisy_b =
      pgsk_fast_generate(seed.graph, seed.profile, c3, options);
  EXPECT_EQ(noisy_a.graph, noisy_b.graph);
  EXPECT_NE(noisy_a.graph, clean.graph);
}

TEST(SkipAheadTest, DestinationsResolveToSeedDestinations) {
  const std::vector<VertexId> destinations = {1, 2};
  SkipAheadLayout layout;
  layout.seed_destinations = destinations;
  layout.seed_edges = 2;
  layout.first_new_vertex = 3;
  layout.edges_per_vertex = 1;
  for (std::uint64_t i = 2; i < 400; ++i) {
    const VertexId dst = skip_ahead_destination(layout, 5, i);
    // Every chain terminates in the seed destination table — the exact
    // PGPBA invariant that a new edge inherits an earlier edge's
    // destination, which is by induction a seed destination.
    EXPECT_TRUE(dst == 1 || dst == 2) << "edge " << i;
    // And twice more: the resolution is a pure function of (seed, index).
    EXPECT_EQ(skip_ahead_destination(layout, 5, i), dst);
  }
}

TEST(SkipAheadTest, AttachByteIdenticalAcrossPoolSizes) {
  const std::vector<VertexId> destinations = {1, 2, 0};
  SkipAheadLayout layout;
  layout.seed_destinations = destinations;
  layout.seed_edges = 3;
  layout.first_new_vertex = 3;
  layout.edges_per_vertex = 2;
  const auto serial = skip_ahead_attach(layout, 40'000, 13, 1024, nullptr);
  ASSERT_EQ(serial.size(), 40'000u - 3u);
  for (const std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(skip_ahead_attach(layout, 40'000, 13, 1024, &pool), serial)
        << threads << " threads";
  }
}

TEST(PgpbaFastTest, ReachesExactDesiredSize) {
  const SeedBundle seed = small_seed();
  ClusterSim cluster(four_cores());
  PgpbaFastOptions options;
  options.desired_edges = 4 * seed.graph.num_edges();
  options.with_properties = false;
  const GenResult result =
      pgpba_fast_generate(seed.graph, seed.profile, cluster, options);
  EXPECT_EQ(result.graph.num_edges(), options.desired_edges);
  EXPECT_EQ(result.graph.num_vertices(),
            seed.graph.num_vertices() + 3 * seed.graph.num_edges());
}

TEST(PgpbaFastTest, EdgesPerVertexControlsVertexGrowth) {
  const SeedBundle seed = small_seed();
  ClusterSim cluster(four_cores());
  PgpbaFastOptions options;
  options.desired_edges = 4 * seed.graph.num_edges();
  options.edges_per_vertex = 4;
  options.with_properties = false;
  const GenResult result =
      pgpba_fast_generate(seed.graph, seed.profile, cluster, options);
  const std::uint64_t grown = 3 * seed.graph.num_edges();
  EXPECT_EQ(result.graph.num_vertices(),
            seed.graph.num_vertices() + (grown + 3) / 4);
}

TEST(PgpbaFastTest, ByteIdenticalAcrossPoolSizes) {
  const SeedBundle seed = small_seed(400);
  PgpbaFastOptions options;
  options.desired_edges = 3 * seed.graph.num_edges();
  ClusterSim baseline_cluster(four_cores());
  const GenResult baseline = pgpba_fast_generate(seed.graph, seed.profile,
                                                 baseline_cluster, options);
  for (const std::size_t threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ClusterSim cluster(four_cores(), pool);
    const GenResult result =
        pgpba_fast_generate(seed.graph, seed.profile, cluster, options);
    EXPECT_EQ(result.graph, baseline.graph) << threads << " threads";
  }
}

TEST(PgpbaFastTest, PreferentialAttachmentSkewsDegrees) {
  const SeedBundle seed = small_seed();
  ClusterSim cluster(four_cores());
  PgpbaFastOptions options;
  options.desired_edges = 8 * seed.graph.num_edges();
  options.with_properties = false;
  const GenResult result =
      pgpba_fast_generate(seed.graph, seed.profile, cluster, options);
  const auto degrees = in_degrees(result.graph);
  const double mean =
      static_cast<double>(result.graph.num_edges()) / degrees.size();
  const std::uint64_t max_degree =
      *std::max_element(degrees.begin(), degrees.end());
  EXPECT_GT(static_cast<double>(max_degree), 20.0 * mean);
}

TEST(FastSamplerRegistryTest, BothGeneratorsRegistered) {
  const Generator* pgsk_fast = find_generator("pgsk-fast");
  ASSERT_NE(pgsk_fast, nullptr);
  const auto pgsk_specs = pgsk_fast->options();
  const auto has_option = [](const std::vector<OptionSpec>& specs,
                             std::string_view name) {
    return std::find_if(specs.begin(), specs.end(), [&](const OptionSpec& s) {
             return s.name == name;
           }) != specs.end();
  };
  EXPECT_TRUE(has_option(pgsk_specs, "noise"));
  EXPECT_TRUE(has_option(pgsk_specs, "dedup"));
  const Generator* pgpba_fast = find_generator("pgpba-fast");
  ASSERT_NE(pgpba_fast, nullptr);
  EXPECT_TRUE(has_option(pgpba_fast->options(), "edges-per-vertex"));
}

}  // namespace
}  // namespace csb
