// Unit tests for src/graph: PropertyGraph storage, CSR views, structural
// algorithms, PageRank, and the three IO formats.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "graph/graph_io.hpp"
#include "graph/pagerank.hpp"
#include "graph/property_graph.hpp"
#include "util/error.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace csb {
namespace {

EdgeProperties sample_props() {
  return EdgeProperties{
      .protocol = Protocol::kUdp,
      .src_port = 5353,
      .dst_port = 53,
      .duration_ms = 250,
      .out_bytes = 1200,
      .in_bytes = 4800,
      .out_pkts = 4,
      .in_pkts = 6,
      .state = ConnState::kNone,
  };
}

PropertyGraph random_graph(std::uint64_t vertices, std::uint64_t edges,
                           std::uint64_t seed) {
  Rng rng(seed);
  PropertyGraph g(vertices);
  for (std::uint64_t e = 0; e < edges; ++e) {
    g.add_edge(rng.uniform(vertices), rng.uniform(vertices));
  }
  return g;
}

// ---------------------------------------------------------- PropertyGraph

TEST(PropertyGraphTest, VerticesAndEdges) {
  PropertyGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.add_vertex(), 0u);
  EXPECT_EQ(g.add_vertices(3), 1u);
  EXPECT_EQ(g.num_vertices(), 4u);
  const EdgeId e = g.add_edge(0, 3);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edge_src(e), 0u);
  EXPECT_EQ(g.edge_dst(e), 3u);
}

TEST(PropertyGraphTest, RejectsOutOfRangeEndpoints) {
  PropertyGraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), CsbError);
  EXPECT_THROW(g.add_edge(5, 0), CsbError);
}

TEST(PropertyGraphTest, PropertyRoundTrip) {
  PropertyGraph g(2);
  const EdgeProperties props = sample_props();
  const EdgeId e = g.add_edge(0, 1, props);
  EXPECT_TRUE(g.has_properties());
  EXPECT_EQ(g.edge_properties(e), props);
}

TEST(PropertyGraphTest, SetEdgePropertiesOverwrites) {
  PropertyGraph g(2);
  g.add_edge(0, 1, EdgeProperties{});
  EdgeProperties updated = sample_props();
  g.set_edge_properties(0, updated);
  EXPECT_EQ(g.edge_properties(0), updated);
}

TEST(PropertyGraphTest, MixingStructureAndPropertiesThrows) {
  PropertyGraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1, EdgeProperties{}), CsbError);

  PropertyGraph h(2);
  h.add_edge(0, 1, EdgeProperties{});
  EXPECT_THROW(h.add_edge(1, 0), CsbError);
}

TEST(PropertyGraphTest, EnsureAndDropProperties) {
  PropertyGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(g.has_properties());
  g.ensure_properties();
  EXPECT_TRUE(g.has_properties());
  EXPECT_EQ(g.edge_properties(0), EdgeProperties{});
  g.drop_properties();
  EXPECT_FALSE(g.has_properties());
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(PropertyGraphTest, SelfLoopsAndMultiEdgesAllowed) {
  PropertyGraph g(2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(PropertyGraphTest, MemoryBytesScalesWithEdges) {
  PropertyGraph g(10);
  for (int i = 0; i < 10; ++i) g.add_edge(0, 1);
  EXPECT_EQ(g.memory_bytes(), 10 * PropertyGraph::bytes_per_edge(false));
  g.ensure_properties();
  EXPECT_EQ(g.memory_bytes(), 10 * PropertyGraph::bytes_per_edge(true));
  EXPECT_GT(PropertyGraph::bytes_per_edge(true),
            PropertyGraph::bytes_per_edge(false));
}

TEST(PropertyGraphTest, EdgeIdOutOfRangeThrows) {
  PropertyGraph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW((void)g.edge_src(1), CsbError);
  EXPECT_THROW((void)g.edge_properties(0), CsbError);  // no columns
}

// ------------------------------------------------------------------ CSR

TEST(CsrTest, OutAdjacencyOnKnownGraph) {
  PropertyGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const CsrView csr(g, CsrDirection::kOut);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 4u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.degree(1), 0u);
  const auto n0 = csr.neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(CsrTest, InAdjacencyOnKnownGraph) {
  PropertyGraph g(3);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  const CsrView csr(g, CsrDirection::kIn);
  EXPECT_EQ(csr.degree(2), 2u);
  EXPECT_EQ(csr.degree(0), 0u);
  const auto n2 = csr.neighbors(2);
  EXPECT_EQ(std::vector<VertexId>(n2.begin(), n2.end()),
            (std::vector<VertexId>{0, 1}));
}

class CsrRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrRandomTest, DegreesMatchDegreeFunctions) {
  const PropertyGraph g = random_graph(50, 400, GetParam());
  const CsrView out_csr(g, CsrDirection::kOut);
  const CsrView in_csr(g, CsrDirection::kIn);
  const auto out_deg = out_degrees(g);
  const auto in_deg = in_degrees(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(out_csr.degree(v), out_deg[v]);
    EXPECT_EQ(in_csr.degree(v), in_deg[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------ algorithms

TEST(DegreeTest, KnownGraph) {
  PropertyGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(out_degrees(g), (std::vector<std::uint64_t>{2, 1, 0}));
  EXPECT_EQ(in_degrees(g), (std::vector<std::uint64_t>{0, 2, 1}));
  EXPECT_EQ(total_degrees(g), (std::vector<std::uint64_t>{2, 3, 1}));
}

TEST(WccTest, TwoComponents) {
  PropertyGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto labels = weakly_connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(count_components(g), 2u);
}

TEST(WccTest, DirectionIgnored) {
  PropertyGraph g(3);
  g.add_edge(2, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(WccTest, IsolatedVerticesAreComponents) {
  PropertyGraph g(4);
  g.add_edge(0, 1);
  EXPECT_EQ(count_components(g), 3u);
}

TEST(SimplifyTest, RemovesParallelEdgesKeepsLoops) {
  PropertyGraph g(3);
  g.add_edge(0, 1, sample_props());
  g.add_edge(0, 1, sample_props());
  g.add_edge(1, 0, sample_props());
  g.add_edge(2, 2, sample_props());
  const PropertyGraph s = simplify(g);
  EXPECT_EQ(s.num_edges(), 3u);  // 0->1, 1->0, 2->2
  EXPECT_EQ(s.num_vertices(), 3u);
  EXPECT_FALSE(s.has_properties());
}

// simplify_parallel promises byte-identical output to serial simplify():
// first-occurrence edge order, loops kept, parallel edges dropped —
// regardless of how the counted shuffle chunks the edge list.
TEST(SimplifyParallelTest, MatchesSerialOnMultigraphAtAnyPoolSize) {
  PropertyGraph g(4);
  g.add_edge(0, 1, sample_props());
  g.add_edge(0, 1, sample_props());
  g.add_edge(1, 0, sample_props());
  g.add_edge(2, 2, sample_props());
  g.add_edge(2, 2, sample_props());
  g.add_edge(3, 0, sample_props());
  const PropertyGraph serial = simplify(g);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(simplify_parallel(g, pool), serial) << threads << " threads";
  }
}

TEST(SimplifyParallelTest, MatchesSerialOnRandomMultigraph) {
  // Dense id range forces many duplicates across chunk boundaries, so
  // shards see interleaved slices from every chunk.
  const PropertyGraph g = random_graph(1 << 10, 50'000, 77);
  const PropertyGraph serial = simplify(g);
  ThreadPool pool(8);
  EXPECT_EQ(simplify_parallel(g, pool), serial);
}

TEST(SimplifyParallelTest, MatchesSerialBeyond32BitVertexIds) {
  // Vertex ids that do not fit the packed (src<<32|dst) key: both paths
  // must switch to the same hash_pair identity.
  const std::uint64_t big = (1ULL << 32) + 4;
  PropertyGraph g(big);
  Rng rng(9);
  for (int e = 0; e < 500; ++e) {
    const VertexId u = rng.uniform(4) + (rng.uniform(2) ? (1ULL << 32) : 0);
    const VertexId v = rng.uniform(4) + (rng.uniform(2) ? (1ULL << 32) : 0);
    g.add_edge(u, v);
  }
  const PropertyGraph serial = simplify(g);
  EXPECT_LT(serial.num_edges(), g.num_edges());
  ThreadPool pool(4);
  EXPECT_EQ(simplify_parallel(g, pool), serial);
}

TEST(TriangleTest, SingleTriangle) {
  PropertyGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_EQ(triangle_count(g), 1u);
}

TEST(TriangleTest, K4HasFourTriangles) {
  PropertyGraph g(4);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) g.add_edge(u, v);
  }
  EXPECT_EQ(triangle_count(g), 4u);
}

TEST(TriangleTest, MultiEdgesDoNotInflateCount) {
  PropertyGraph g(3);
  for (int i = 0; i < 5; ++i) {
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
  }
  EXPECT_EQ(triangle_count(g), 1u);
}

TEST(ClusteringTest, TriangleIsFullyClustered) {
  PropertyGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 1.0);
}

TEST(ClusteringTest, StarHasZeroClustering) {
  PropertyGraph g(5);
  for (VertexId v = 1; v < 5; ++v) g.add_edge(0, v);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
}

TEST(ClusteringTest, PathGraphValue) {
  // 0-1-2: one wedge, no triangle.
  PropertyGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(g), 0.0);
}

// -------------------------------------------------------------- PageRank

TEST(PageRankTest, UniformOnCycle) {
  PropertyGraph g(4);
  for (VertexId v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  ThreadPool pool(2);
  const auto result = pagerank(g, pool);
  for (const double score : result.scores) EXPECT_NEAR(score, 0.25, 1e-6);
}

class PageRankSumTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PageRankSumTest, ScoresSumToOne) {
  const PropertyGraph g = random_graph(200, 1500, GetParam());
  ThreadPool pool(2);
  const auto result = pagerank(g, pool);
  double sum = 0.0;
  for (const double s : result.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRankSumTest,
                         ::testing::Values(10, 20, 30, 40));

TEST(PageRankTest, StarCenterDominates) {
  PropertyGraph g(6);
  for (VertexId v = 1; v < 6; ++v) g.add_edge(v, 0);
  ThreadPool pool(2);
  const auto result = pagerank(g, pool);
  for (VertexId v = 1; v < 6; ++v) {
    EXPECT_GT(result.scores[0], 3.0 * result.scores[v]);
  }
}

TEST(PageRankTest, HandlesAllDanglingGraph) {
  PropertyGraph g(3);  // no edges at all
  ThreadPool pool(1);
  const auto result = pagerank(g, pool);
  for (const double s : result.scores) EXPECT_NEAR(s, 1.0 / 3.0, 1e-9);
}

TEST(PageRankTest, EmptyGraph) {
  PropertyGraph g;
  ThreadPool pool(1);
  EXPECT_TRUE(pagerank(g, pool).scores.empty());
}

TEST(PageRankTest, ConvergesEarlyWithTolerance) {
  PropertyGraph g(4);
  for (VertexId v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  ThreadPool pool(1);
  PageRankOptions options;
  options.max_iterations = 100;
  options.tolerance = 1e-6;
  const auto result = pagerank(g, pool, options);
  EXPECT_LT(result.iterations, 10u);  // cycle is uniform from iteration 1
}

// ------------------------------------------------------------------- IO

class BinaryIoTest : public ::testing::TestWithParam<bool> {};

TEST_P(BinaryIoTest, RoundTrips) {
  const bool with_props = GetParam();
  Rng rng(99);
  PropertyGraph g(20);
  for (int i = 0; i < 50; ++i) {
    const VertexId u = rng.uniform(20);
    const VertexId v = rng.uniform(20);
    if (with_props) {
      EdgeProperties p = sample_props();
      p.out_bytes = rng.uniform(100000);
      p.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
      g.add_edge(u, v, p);
    } else {
      g.add_edge(u, v);
    }
  }
  std::stringstream buffer;
  save_binary(g, buffer);
  const PropertyGraph loaded = load_binary(buffer);
  EXPECT_EQ(loaded, g);
}

INSTANTIATE_TEST_SUITE_P(Props, BinaryIoTest, ::testing::Bool());

TEST(BinaryIoTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOTAGRAPH-------------------------";
  EXPECT_THROW(load_binary(buffer), CsbError);
}

TEST(BinaryIoTest, RejectsTruncatedStream) {
  PropertyGraph g(5);
  g.add_edge(0, 1);
  std::stringstream buffer;
  save_binary(g, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_binary(truncated), CsbError);
}

TEST(CsvIoTest, RoundTripsWithProperties) {
  PropertyGraph g(3);
  g.add_edge(0, 1, sample_props());
  EdgeProperties p2 = sample_props();
  p2.protocol = Protocol::kTcp;
  p2.state = ConnState::kSF;
  g.add_edge(2, 0, p2);
  std::stringstream buffer;
  save_csv(g, buffer);
  const PropertyGraph loaded = load_csv(buffer);
  EXPECT_EQ(loaded, g);
}

TEST(CsvIoTest, RoundTripsStructureOnly) {
  PropertyGraph g(4);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  std::stringstream buffer;
  save_csv(g, buffer);
  const PropertyGraph loaded = load_csv(buffer);
  EXPECT_EQ(loaded.num_edges(), 2u);
  EXPECT_EQ(loaded.edge_src(0), 0u);
  EXPECT_EQ(loaded.edge_dst(0), 3u);
  EXPECT_FALSE(loaded.has_properties());
}

TEST(CsvIoTest, RejectsMissingHeader) {
  std::stringstream buffer("1,2,TCP\n");
  EXPECT_THROW(load_csv(buffer), CsbError);
}

TEST(GraphmlTest, ContainsNodesEdgesAndAttributes) {
  PropertyGraph g(2);
  g.add_edge(0, 1, sample_props());
  std::stringstream buffer;
  save_graphml(g, buffer);
  const std::string xml = buffer.str();
  EXPECT_NE(xml.find("<node id=\"n0\"/>"), std::string::npos);
  EXPECT_NE(xml.find("<node id=\"n1\"/>"), std::string::npos);
  EXPECT_NE(xml.find("source=\"n0\" target=\"n1\""), std::string::npos);
  EXPECT_NE(xml.find("<data key=\"protocol\">UDP</data>"), std::string::npos);
  EXPECT_NE(xml.find("<data key=\"in_bytes\">4800</data>"), std::string::npos);
  EXPECT_NE(xml.find("</graphml>"), std::string::npos);
}

TEST(BinaryFileTest, FileRoundTrip) {
  PropertyGraph g(3);
  g.add_edge(0, 1, sample_props());
  const std::string path = ::testing::TempDir() + "/csb_graph_test.bin";
  save_binary_file(g, path);
  EXPECT_EQ(load_binary_file(path), g);
}

TEST(GraphmlTest, RoundTripsWithProperties) {
  Rng rng(17);
  PropertyGraph g(12);
  for (int i = 0; i < 40; ++i) {
    EdgeProperties p = sample_props();
    p.out_bytes = rng.uniform(100000);
    p.dst_port = static_cast<std::uint16_t>(rng.uniform(65536));
    p.state = ConnState::kSF;
    p.protocol = Protocol::kTcp;
    g.add_edge(rng.uniform(12), rng.uniform(12), p);
  }
  std::stringstream xml;
  save_graphml(g, xml);
  const PropertyGraph loaded = load_graphml(xml);
  EXPECT_EQ(loaded, g);
}

TEST(GraphmlTest, RoundTripsStructureOnly) {
  PropertyGraph g(4);
  g.add_edge(0, 3);
  g.add_edge(3, 1);
  std::stringstream xml;
  save_graphml(g, xml);
  const PropertyGraph loaded = load_graphml(xml);
  EXPECT_EQ(loaded.num_vertices(), 4u);
  EXPECT_EQ(loaded.num_edges(), 2u);
  EXPECT_FALSE(loaded.has_properties());
  EXPECT_EQ(loaded.edge_dst(0), 3u);
}

TEST(GraphmlTest, PreservesIsolatedVertices) {
  PropertyGraph g(6);  // vertices 2..5 are isolated
  g.add_edge(0, 1);
  std::stringstream xml;
  save_graphml(g, xml);
  EXPECT_EQ(load_graphml(xml).num_vertices(), 6u);
}

TEST(GraphmlTest, RejectsGarbage) {
  std::stringstream not_xml("hello world");
  EXPECT_THROW(load_graphml(not_xml), CsbError);
  std::stringstream bad_id(
      "<graphml><graph><node id=\"xyz\"/></graph></graphml>");
  EXPECT_THROW(load_graphml(bad_id), CsbError);
}

// ---------------------------------------------------------------- SCC

TEST(SccTest, CycleIsOneComponent) {
  PropertyGraph g(4);
  for (VertexId v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  const auto labels = strongly_connected_components(g);
  for (const VertexId l : labels) EXPECT_EQ(l, 0u);
  EXPECT_EQ(count_strong_components(g), 1u);
}

TEST(SccTest, DagIsAllSingletons) {
  PropertyGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  const auto labels = strongly_connected_components(g);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(labels[v], v);
  EXPECT_EQ(count_strong_components(g), 4u);
}

TEST(SccTest, TwoCyclesJoinedByBridge) {
  // Cycle {0,1,2} -> bridge -> cycle {3,4}.
  PropertyGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 3);
  const auto labels = strongly_connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(count_strong_components(g), 2u);
}

TEST(SccTest, AgreesWithWccOnSymmetricGraphs) {
  // When every edge has its reverse, SCC == WCC.
  Rng rng(12);
  PropertyGraph g(60);
  for (int i = 0; i < 120; ++i) {
    const VertexId u = rng.uniform(60);
    const VertexId v = rng.uniform(60);
    g.add_edge(u, v);
    g.add_edge(v, u);
  }
  EXPECT_EQ(strongly_connected_components(g),
            weakly_connected_components(g));
}

TEST(SccTest, DeepPathDoesNotOverflowStack) {
  // 200k-vertex directed path: recursive Tarjan would crash.
  constexpr std::uint64_t kN = 200'000;
  PropertyGraph g(kN);
  for (VertexId v = 0; v + 1 < kN; ++v) g.add_edge(v, v + 1);
  EXPECT_EQ(count_strong_components(g), kN);
}

// --------------------------------------------------------------- k-core

TEST(KCoreTest, TriangleWithTail) {
  // Triangle {0,1,2} (core 2) with a pendant 3 (core 1) and isolated 4.
  PropertyGraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto core = core_numbers(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(core[4], 0u);
}

TEST(KCoreTest, CompleteGraphCore) {
  constexpr std::uint64_t kN = 6;
  PropertyGraph g(kN);
  for (VertexId u = 0; u < kN; ++u) {
    for (VertexId v = u + 1; v < kN; ++v) g.add_edge(u, v);
  }
  for (const auto c : core_numbers(g)) EXPECT_EQ(c, kN - 1);
}

TEST(KCoreTest, CoreNeverExceedsDegree) {
  const PropertyGraph g = random_graph(100, 600, 33);
  const auto core = core_numbers(g);
  const PropertyGraph simple = simplify(g);
  const auto degree = total_degrees(simple);
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_LE(core[v], degree[v]);
  }
}

// --------------------------------------------------------- assortativity

TEST(AssortativityTest, HubFanoutIsDisassortative) {
  // A high-out-degree hub feeding degree-1 leaves, plus one leaf-to-leaf
  // edge pointing at a well-fed target: high source degree pairs with low
  // target degree and vice versa -> negative correlation.
  PropertyGraph g(10);
  for (VertexId v = 1; v < 9; ++v) g.add_edge(0, v);  // hub out-degree 8
  g.add_edge(1, 2);  // source out-degree 1, target in-degree 2
  EXPECT_LT(degree_assortativity(g), 0.0);
}

TEST(AssortativityTest, DegenerateGraphsReturnZero) {
  PropertyGraph g(3);
  EXPECT_DOUBLE_EQ(degree_assortativity(g), 0.0);
  g.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(degree_assortativity(g), 0.0);  // single edge
  // Regular cycle: all degrees equal -> zero variance -> 0.
  PropertyGraph cycle(4);
  for (VertexId v = 0; v < 4; ++v) cycle.add_edge(v, (v + 1) % 4);
  EXPECT_DOUBLE_EQ(degree_assortativity(cycle), 0.0);
}

TEST(AssortativityTest, BoundedByOne) {
  const PropertyGraph g = random_graph(80, 500, 44);
  const double r = degree_assortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

}  // namespace
}  // namespace csb
