// Unit tests for src/ids: traffic-pattern aggregation, the Fig. 4 detector
// on injected attacks, benign false-positive behaviour, and calibration.
#include <gtest/gtest.h>

#include <algorithm>

#include "ids/calibrate.hpp"
#include "ids/detector.hpp"
#include "trace/attacks.hpp"
#include "trace/traffic_model.hpp"

namespace csb {
namespace {

std::vector<NetflowRecord> benign_records(std::uint64_t sessions = 4000) {
  TrafficModelConfig config;
  config.benign_sessions = sessions;
  return sessions_to_netflow(TrafficModel(config).generate_benign());
}

bool has_alarm(const std::vector<Alarm>& alarms, std::uint32_t ip,
               AttackClass type) {
  return std::any_of(alarms.begin(), alarms.end(), [&](const Alarm& a) {
    return a.detection_ip == ip && a.type == type;
  });
}

// ----------------------------------------------------------- aggregation

TEST(TrafficPatternTest, DestinationAggregation) {
  std::vector<NetflowRecord> records(3);
  records[0].src_ip = 1;
  records[0].dst_ip = 9;
  records[0].dst_port = 80;
  records[0].out_bytes = 100;
  records[0].in_bytes = 50;
  records[0].out_pkts = 2;
  records[0].in_pkts = 1;
  records[0].syn_count = 2;
  records[0].ack_count = 1;
  records[1] = records[0];
  records[1].src_ip = 2;
  records[1].dst_port = 443;
  records[2] = records[0];
  records[2].src_ip = 1;

  const auto patterns = destination_based_patterns(records);
  ASSERT_TRUE(patterns.contains(9));
  const TrafficPattern& p = patterns.at(9);
  EXPECT_EQ(p.n_flows, 3u);
  EXPECT_EQ(p.n_distinct_peers, 2u);       // sources 1, 2
  EXPECT_EQ(p.n_distinct_dst_ports, 2u);   // 80, 443
  EXPECT_EQ(p.sum_flow_size, 3u * 150u);
  EXPECT_EQ(p.sum_packets, 3u * 3u);
  EXPECT_EQ(p.syn_count, 6u);
  EXPECT_EQ(p.ack_count, 3u);
  EXPECT_DOUBLE_EQ(p.avg_flow_size(), 150.0);
  EXPECT_DOUBLE_EQ(p.ack_syn_ratio(), 0.5);
}

TEST(TrafficPatternTest, SourceAggregationCountsDestinations) {
  std::vector<NetflowRecord> records(2);
  records[0].src_ip = 7;
  records[0].dst_ip = 1;
  records[1].src_ip = 7;
  records[1].dst_ip = 2;
  const auto patterns = source_based_patterns(records);
  EXPECT_EQ(patterns.at(7).n_distinct_peers, 2u);
}

TEST(TrafficPatternTest, ProtocolTallies) {
  std::vector<NetflowRecord> records(3);
  records[0].dst_ip = 5;
  records[0].protocol = Protocol::kUdp;
  records[1].dst_ip = 5;
  records[1].protocol = Protocol::kUdp;
  records[2].dst_ip = 5;
  records[2].protocol = Protocol::kTcp;
  const auto patterns = destination_based_patterns(records);
  EXPECT_EQ(patterns.at(5).udp_flows, 2u);
  EXPECT_EQ(patterns.at(5).tcp_flows, 1u);
  EXPECT_EQ(patterns.at(5).dominant_protocol(), Protocol::kUdp);
}

// --------------------------------------------------------------- detector

TEST(DetectorTest, DetectsSynFlood) {
  auto records = benign_records();
  SynFloodConfig attack;
  attack.victim_ip = 0x0a0000f0;  // quiet internal host
  attack.flows = 3000;
  attack.start_us = records.front().first_us;
  Rng rng(1);
  for (const auto& s : inject_syn_flood(attack, rng)) {
    records.push_back(to_netflow(s));
  }
  const AnomalyDetector detector;
  const auto alarms = detector.detect(records);
  EXPECT_TRUE(has_alarm(alarms, attack.victim_ip, AttackClass::kDdos) ||
              has_alarm(alarms, attack.victim_ip, AttackClass::kSynFlood));
}

TEST(DetectorTest, SpoofedFloodClassifiedDistributed) {
  // 1500 spoofed sources > sip_t=64 -> the flood is flagged as DDoS.
  auto records = benign_records(500);
  SynFloodConfig attack;
  attack.victim_ip = 0x0a0000f1;
  attack.flows = 3000;
  attack.spoofed_sources = 1500;
  Rng rng(2);
  for (const auto& s : inject_syn_flood(attack, rng)) {
    records.push_back(to_netflow(s));
  }
  const auto alarms = AnomalyDetector().detect(records);
  EXPECT_TRUE(has_alarm(alarms, attack.victim_ip, AttackClass::kDdos));
}

TEST(DetectorTest, DetectsHostScanOnBothViews) {
  auto records = benign_records(500);
  HostScanConfig attack;
  attack.scanner_ip = 0xc0a80001;
  attack.target_ip = 0x0a0000f2;
  attack.port_count = 2000;
  Rng rng(3);
  for (const auto& s : inject_host_scan(attack, rng)) {
    records.push_back(to_netflow(s));
  }
  const auto alarms = AnomalyDetector().detect(records);
  // Destination view flags the victim, source view flags the scanner.
  EXPECT_TRUE(has_alarm(alarms, attack.target_ip, AttackClass::kHostScan));
  EXPECT_TRUE(has_alarm(alarms, attack.scanner_ip, AttackClass::kHostScan));
}

TEST(DetectorTest, DetectsNetworkScan) {
  auto records = benign_records(500);
  NetworkScanConfig attack;
  attack.scanner_ip = 0xc0a80002;
  attack.subnet_base = 0x0a020000;
  attack.host_count = 1000;
  Rng rng(4);
  for (const auto& s : inject_network_scan(attack, rng)) {
    records.push_back(to_netflow(s));
  }
  const auto alarms = AnomalyDetector().detect(records);
  EXPECT_TRUE(has_alarm(alarms, attack.scanner_ip, AttackClass::kNetworkScan));
}

TEST(DetectorTest, DetectsUdpFloodAsFlooding) {
  auto records = benign_records(500);
  UdpFloodConfig attack;
  attack.attacker_ip = 0xc0a80003;
  attack.victim_ip = 0x0a0000f3;
  attack.flows = 400;
  attack.pkts_per_flow = 600;
  Rng rng(5);
  for (const auto& s : inject_udp_flood(attack, rng)) {
    records.push_back(to_netflow(s));
  }
  const auto alarms = AnomalyDetector().detect(records);
  ASSERT_TRUE(has_alarm(alarms, attack.victim_ip, AttackClass::kFlooding));
  // Protocol attribution: the flood is UDP.
  for (const auto& alarm : alarms) {
    if (alarm.detection_ip == attack.victim_ip &&
        alarm.type == AttackClass::kFlooding) {
      EXPECT_EQ(alarm.protocol, Protocol::kUdp);
    }
  }
}

TEST(DetectorTest, DetectsIcmpFlood) {
  auto records = benign_records(500);
  IcmpFloodConfig attack;
  attack.attacker_ip = 0xc0a80004;
  attack.victim_ip = 0x0a0000f4;
  Rng rng(6);
  for (const auto& s : inject_icmp_flood(attack, rng)) {
    records.push_back(to_netflow(s));
  }
  const auto alarms = AnomalyDetector().detect(records);
  EXPECT_TRUE(has_alarm(alarms, attack.victim_ip, AttackClass::kFlooding));
}

TEST(DetectorTest, CleanTrafficBelowThresholdsRaisesNothing) {
  // A handful of ordinary flows stays below every default threshold.
  std::vector<NetflowRecord> records;
  for (int i = 0; i < 20; ++i) {
    NetflowRecord r;
    r.src_ip = 100 + i;
    r.dst_ip = 200;
    r.protocol = Protocol::kTcp;
    r.dst_port = 443;
    r.out_bytes = 5000;
    r.in_bytes = 20000;
    r.out_pkts = 20;
    r.in_pkts = 30;
    r.syn_count = 2;
    r.ack_count = 40;
    r.state = ConnState::kSF;
    records.push_back(r);
  }
  EXPECT_TRUE(AnomalyDetector().detect(records).empty());
}

TEST(DetectorTest, AlarmsAreSortedDeterministically) {
  auto records = benign_records(500);
  Rng rng(7);
  SynFloodConfig syn;
  syn.victim_ip = 0x0a0000f5;
  syn.flows = 2000;
  for (const auto& s : inject_syn_flood(syn, rng)) {
    records.push_back(to_netflow(s));
  }
  HostScanConfig scan;
  scan.scanner_ip = 0xc0a80005;
  scan.target_ip = 0x0a0000f6;
  scan.port_count = 1500;
  for (const auto& s : inject_host_scan(scan, rng)) {
    records.push_back(to_netflow(s));
  }
  const auto a = AnomalyDetector().detect(records);
  const auto b = AnomalyDetector().detect(records);
  EXPECT_EQ(a, b);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].detection_ip, a[i].detection_ip);
  }
}

// -------------------------------------------------------------- calibration

TEST(CalibrationTest, ThresholdsSitAboveBenignMaxima) {
  const auto records = benign_records();
  const auto thresholds =
      calibrate_thresholds(records, CalibrationOptions{.quantile = 1.0,
                                                       .margin = 2.0});
  for (const auto& [ip, p] : destination_based_patterns(records)) {
    EXPECT_LE(static_cast<double>(p.n_flows), thresholds.nf_t);
    EXPECT_LE(static_cast<double>(p.n_distinct_peers), thresholds.sip_t);
    EXPECT_LE(static_cast<double>(p.sum_flow_size), thresholds.fs_ht);
  }
  for (const auto& [ip, p] : source_based_patterns(records)) {
    EXPECT_LE(static_cast<double>(p.n_distinct_peers), thresholds.dip_t);
  }
}

TEST(CalibrationTest, CalibratedDetectorIsQuietOnBenignTraffic) {
  const auto records = benign_records();
  const auto thresholds = calibrate_thresholds(
      records, CalibrationOptions{.quantile = 1.0, .margin = 2.0});
  const AnomalyDetector detector(thresholds);
  EXPECT_TRUE(detector.detect(records).empty());
}

TEST(CalibrationTest, CalibratedDetectorStillCatchesAttacks) {
  auto records = benign_records();
  const auto thresholds = calibrate_thresholds(
      records, CalibrationOptions{.quantile = 1.0, .margin = 2.0});
  SynFloodConfig attack;
  attack.victim_ip = 0x0a0000f7;
  attack.flows = 8000;
  Rng rng(8);
  for (const auto& s : inject_syn_flood(attack, rng)) {
    records.push_back(to_netflow(s));
  }
  const AnomalyDetector detector(thresholds);
  const auto alarms = detector.detect(records);
  EXPECT_TRUE(has_alarm(alarms, attack.victim_ip, AttackClass::kDdos) ||
              has_alarm(alarms, attack.victim_ip, AttackClass::kSynFlood));
}

TEST(CalibrationTest, RejectsBadInput) {
  EXPECT_THROW(calibrate_thresholds({}), CsbError);
  const auto records = benign_records(100);
  EXPECT_THROW(
      calibrate_thresholds(records, CalibrationOptions{.quantile = 1.5}),
      CsbError);
  EXPECT_THROW(
      calibrate_thresholds(records, CalibrationOptions{.margin = 0.5}),
      CsbError);
}

}  // namespace
}  // namespace csb
