// End-to-end integration tests crossing every module boundary:
//   traffic model -> PCAP bytes -> decode -> flow assembly -> seed graph
//   -> PGPBA/PGSK growth -> veracity, and the IDS pipeline on labeled
//   attack traffic — the complete workflows a benchmark user runs.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/pgpba.hpp"
#include "gen/pgsk.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph_io.hpp"
#include "ids/calibrate.hpp"
#include "ids/detector.hpp"
#include "pcap/pcap_file.hpp"
#include "seed/seed.hpp"
#include "trace/attacks.hpp"
#include "trace/traffic_model.hpp"
#include "veracity/veracity.hpp"

namespace csb {
namespace {

TEST(EndToEndTest, PcapToSeedToPgpbaToVeracity) {
  // 1. Model -> real PCAP byte stream.
  TrafficModelConfig config;
  config.benign_sessions = 600;
  config.client_hosts = 100;
  config.server_hosts = 25;
  const auto sessions = TrafficModel(config).generate_benign();
  std::stringstream pcap_stream;
  {
    PcapWriter writer(pcap_stream);
    for (const auto& packet : sessions_to_packets(sessions)) {
      writer.write(packet);
    }
  }

  // 2. PCAP -> seed bundle (Fig. 1).
  PcapReader reader(pcap_stream);
  std::vector<PcapPacket> packets;
  PcapPacket packet;
  while (reader.next(packet)) packets.push_back(packet);
  const SeedBundle seed = build_seed_from_packets(packets);
  ASSERT_GT(seed.graph.num_edges(), 500u);

  // 3. Seed -> synthetic graph (PGPBA).
  ClusterSim cluster(ClusterConfig{.nodes = 4, .cores_per_node = 2});
  PgpbaOptions options;
  options.desired_edges = 6 * seed.graph.num_edges();
  const GenResult result =
      pgpba_generate(seed.graph, seed.profile, cluster, options);
  ASSERT_GE(result.graph.num_edges(), options.desired_edges);
  ASSERT_TRUE(result.graph.has_properties());

  // 4. Veracity against the seed.
  ThreadPool pool(2);
  const VeracityReport report =
      evaluate_veracity(seed.graph, result.graph, pool);
  EXPECT_GT(report.degree_score, 0.0);
  EXPECT_LT(report.degree_score, 0.1);
  EXPECT_LT(report.pagerank_score, 0.1);

  // 5. Synthetic attribute distributions stay inside the seed support.
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const EdgeId e = rng.uniform(result.graph.num_edges());
    const EdgeProperties p = result.graph.edge_properties(e);
    EXPECT_GT(seed.profile.in_bytes().pmf(static_cast<double>(p.in_bytes)),
              0.0);
  }
}

TEST(EndToEndTest, PgskPipelineWithPersistence) {
  TrafficModelConfig config;
  config.benign_sessions = 500;
  const SeedBundle seed = build_seed_from_netflow(
      sessions_to_netflow(TrafficModel(config).generate_benign()));

  ClusterSim cluster(ClusterConfig{.nodes = 4, .cores_per_node = 2});
  PgskOptions options;
  options.desired_edges = 2 * seed.graph.num_edges();
  options.fit.gradient_iterations = 8;
  options.fit.swaps_per_iteration = 200;
  options.fit.burn_in_swaps = 500;
  const GenResult result =
      pgsk_generate(seed.graph, seed.profile, cluster, options);

  // Round-trip the synthetic dataset through the binary format (how a
  // benchmark would hand it to the system under test).
  std::stringstream buffer;
  save_binary(result.graph, buffer);
  const PropertyGraph loaded = load_binary(buffer);
  EXPECT_EQ(loaded, result.graph);
}

TEST(EndToEndTest, IdsPipelineOnLabeledTraffic) {
  // Benign baseline, calibration, attack injection, detection — the §IV
  // workflow with ground-truth checks of both hits and false positives.
  TrafficModelConfig config;
  config.benign_sessions = 4000;
  const TrafficModel model(config);
  auto sessions = model.generate_benign();
  const auto benign = sessions_to_netflow(sessions);
  const auto thresholds = calibrate_thresholds(
      benign, CalibrationOptions{.quantile = 1.0, .margin = 2.5});

  Rng rng(77);
  const std::uint64_t t0 = config.start_time_us;
  SynFloodConfig syn;
  syn.victim_ip = model.server_ip(49);  // cold FTP-pool server
  syn.flows = 6000;
  syn.start_us = t0;
  HostScanConfig scan;
  scan.scanner_ip = 0xc6336401;  // external scanner
  scan.target_ip = model.server_ip(53);
  scan.port_count = 3000;
  scan.start_us = t0;
  UdpFloodConfig udp;
  udp.attacker_ip = 0xc6336402;
  udp.victim_ip = model.server_ip(47);
  udp.flows = 500;
  udp.pkts_per_flow = 800;
  udp.start_us = t0;

  auto all = benign;
  for (const auto& s : inject_syn_flood(syn, rng)) all.push_back(to_netflow(s));
  for (const auto& s : inject_host_scan(scan, rng)) all.push_back(to_netflow(s));
  for (const auto& s : inject_udp_flood(udp, rng)) all.push_back(to_netflow(s));

  const AnomalyDetector detector(thresholds);
  const auto alarms = detector.detect(all);

  const auto has = [&](std::uint32_t ip, AttackClass type) {
    return std::any_of(alarms.begin(), alarms.end(), [&](const Alarm& a) {
      return a.detection_ip == ip && a.type == type;
    });
  };
  EXPECT_TRUE(has(syn.victim_ip, AttackClass::kDdos) ||
              has(syn.victim_ip, AttackClass::kSynFlood));
  EXPECT_TRUE(has(scan.target_ip, AttackClass::kHostScan) ||
              has(scan.scanner_ip, AttackClass::kHostScan));
  EXPECT_TRUE(has(udp.victim_ip, AttackClass::kFlooding));

  // No alarm may point at an uninvolved benign client.
  for (const auto& alarm : alarms) {
    EXPECT_NE(alarm.detection_ip, model.client_ip(0));
  }
}

TEST(EndToEndTest, SimulatedClusterScalesGenerators) {
  // Strong-scaling smoke test of the Fig. 12 methodology: the same PGPBA
  // job on more virtual nodes must report a smaller simulated makespan.
  TrafficModelConfig config;
  config.benign_sessions = 800;
  const SeedBundle seed = build_seed_from_netflow(
      sessions_to_netflow(TrafficModel(config).generate_benign()));
  const auto run = [&](std::size_t nodes) {
    double best = 1e18;
    for (int repeat = 0; repeat < 3; ++repeat) {
      ClusterSim cluster(ClusterConfig{.nodes = nodes,
                                       .cores_per_node = 2,
                                       .smooth_task_durations = true});
      PgpbaOptions options;
      options.desired_edges = 20 * seed.graph.num_edges();
      options.fraction = 1.0;
      options.partitions = 64;  // fixed task granularity across runs
      const GenResult result =
          pgpba_generate(seed.graph, seed.profile, cluster, options);
      best = std::min(best, result.metrics.simulated_seconds);
    }
    return best;
  };
  const double t2 = run(2);
  const double t16 = run(16);
  EXPECT_LT(t16, t2);
}

TEST(EndToEndTest, GraphmlExportOfSyntheticData) {
  TrafficModelConfig config;
  config.benign_sessions = 120;
  const SeedBundle seed = build_seed_from_netflow(
      sessions_to_netflow(TrafficModel(config).generate_benign()));
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  PgpbaOptions options;
  options.desired_edges = 2 * seed.graph.num_edges();
  const GenResult result =
      pgpba_generate(seed.graph, seed.profile, cluster, options);
  std::stringstream xml;
  save_graphml(result.graph, xml);
  EXPECT_NE(xml.str().find("</graphml>"), std::string::npos);
  EXPECT_NE(xml.str().find("protocol"), std::string::npos);
}

}  // namespace
}  // namespace csb
