// Tests for csblint (src/lint/): the determinism & concurrency static
// analysis that enforces the repo's byte-identical-parallelism contract.
//
// Fixture files under tests/data/lint/ carry "// VIOLATION" markers on every
// line a rule must flag; each fixture also contains exactly one suppressed
// case, so the tests prove both 100% detection of the seeded violations and
// that suppression comments silence exactly one line.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lexer.hpp"
#include "lint/lint.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"
#include "lint/scopes.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace csb::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(CSB_TEST_DATA_DIR) + "/lint/" + name);
}

/// 1-based line numbers carrying a "// VIOLATION" marker comment.
std::set<int> marker_lines(const std::string& content) {
  std::set<int> lines;
  std::istringstream in(content);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.find("// VIOLATION") != std::string::npos) lines.insert(number);
  }
  return lines;
}

LintResult lint_one(const std::string& virtual_path,
                    const std::string& content, LintOptions options = {}) {
  Linter linter(std::move(options));
  linter.add_file(virtual_path, content);
  return linter.run();
}

std::set<int> diagnostic_lines(const LintResult& result,
                               const std::string& rule) {
  std::set<int> lines;
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.rule, rule) << "unexpected rule at " << d.file << ":"
                            << d.line << ": " << d.message;
    lines.insert(d.line);
  }
  return lines;
}

struct FixtureCase {
  const char* file;          // under tests/data/lint/
  const char* virtual_path;  // scoping path handed to the linter
  const char* rule;          // the one rule the fixture exercises
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

// Every marker line is detected, nothing else fires, and the fixture's one
// suppressed case is counted instead of reported.
TEST_P(LintFixtureTest, DetectsAllSeededViolations) {
  const FixtureCase& param = GetParam();
  const std::string content = fixture(param.file);
  const std::set<int> expected = marker_lines(content);
  ASSERT_FALSE(expected.empty()) << param.file << " seeds no violations";

  const LintResult result = lint_one(param.virtual_path, content);
  EXPECT_EQ(diagnostic_lines(result, param.rule), expected) << param.file;
  EXPECT_EQ(result.suppressed_count, 1u)
      << param.file << " must contain exactly one suppressed case";
  EXPECT_EQ(result.files_linted, 1u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.file, param.virtual_path);
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_FALSE(d.message.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        FixtureCase{"atomic_reduce.cpp", "src/graph/atomic_reduce.cpp",
                    "atomic-float-reduce"},
        FixtureCase{"nondet.cpp", "src/gen/nondet.cpp",
                    "banned-nondeterminism"},
        FixtureCase{"unordered.cpp", "src/stats/unordered.cpp",
                    "unordered-iteration"},
        FixtureCase{"reduce.cpp", "src/mr/reduce.cpp", "raw-parallel-reduce"},
        FixtureCase{"spans.cpp", "src/obs/spans.cpp", "span-naming"},
        FixtureCase{"banned_fn.cpp", "tools/banned_fn.cpp",
                    "banned-functions"},
        FixtureCase{"unchecked_syscall.cpp", "src/store/unchecked_syscall.cpp",
                    "unchecked-syscall"},
        FixtureCase{"lock_discipline.cpp", "src/mr/lock_discipline.cpp",
                    "lock-discipline"},
        FixtureCase{"detached_capture.cpp", "src/util/detached_capture.cpp",
                    "detached-thread-capture"},
        FixtureCase{"span_balance.cpp", "src/gen/span_balance.cpp",
                    "span-balance"},
        FixtureCase{"rng_reuse.cpp", "src/gen/rng_reuse.cpp",
                    "counter-rng-reuse"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.rule;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// Scoped rules stay quiet outside their directories: the nondeterminism
// fixture is clean when it pretends to be a tool, and the unordered fixture
// is clean outside the order-critical modules.
TEST(LintScopeTest, ScopedRulesIgnoreOtherDirectories) {
  const LintResult nondet =
      lint_one("tools/nondet.cpp", fixture("nondet.cpp"));
  EXPECT_TRUE(nondet.diagnostics.empty());

  const LintResult unordered =
      lint_one("docs/examples/unordered.cpp", fixture("unordered.cpp"));
  EXPECT_TRUE(unordered.diagnostics.empty());

  const LintResult atomics =
      lint_one("tools/atomic_reduce.cpp", fixture("atomic_reduce.cpp"));
  EXPECT_TRUE(atomics.diagnostics.empty());
}

// The v2 scoped rules are equally quiet outside their directories:
// unchecked-syscall only polices the I/O modules, span-balance only the
// production tree (test files open ad-hoc spans on purpose), and
// counter-rng-reuse only the order-critical modules.
TEST(LintScopeTest, SemanticRulesIgnoreOtherDirectories) {
  const LintResult syscalls = lint_one("src/util/unchecked_syscall.cpp",
                                       fixture("unchecked_syscall.cpp"));
  EXPECT_TRUE(syscalls.diagnostics.empty());

  const LintResult spans =
      lint_one("tests/span_balance.cpp", fixture("span_balance.cpp"));
  EXPECT_TRUE(spans.diagnostics.empty());

  const LintResult rng =
      lint_one("docs/examples/rng_reuse.cpp", fixture("rng_reuse.cpp"));
  EXPECT_TRUE(rng.diagnostics.empty());
}

TEST(LintScopeTest, RuleFilterSelectsSingleRule) {
  const std::string content =
      "double total = 0.0;\n"
      "void f(char* d, const char* s, ThreadPool* pool) {\n"
      "  strcpy(d, s);\n"
      "  parallel_for(pool, 0, 9, [&](std::size_t i) { total += 1.0; });\n"
      "}\n";
  const LintResult result =
      lint_one("src/gen/mixed.cpp", content, {{"banned-functions"}});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "banned-functions");
  EXPECT_EQ(result.diagnostics[0].line, 3);
}

TEST(LintScopeTest, UnknownRuleInOptionsThrows) {
  EXPECT_THROW(Linter({{"no-such-rule"}}), CsbError);
}

// ------------------------------------------------------------ suppression

// A trailing suppression silences its own line and nothing else: the
// identical violation on the next line still fires.
TEST(SuppressionTest, TrailingCommentSilencesExactlyOneLine) {
  const std::string content =
      "int parse(const char* s) {\n"
      "  int a = atoi(s);  // csblint: banned-functions-ok — test case\n"
      "  int b = atoi(s);\n"
      "  return a + b;\n"
      "}\n";
  const LintResult result = lint_one("tools/parse.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 3);
  EXPECT_EQ(result.suppressed_count, 1u);
}

// A standalone suppression comment targets the next code line only.
TEST(SuppressionTest, StandaloneCommentSilencesNextCodeLine) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  // csblint: banned-functions-ok — test case\n"
      "  strcpy(d, s);\n"
      "  strcpy(d, s);\n"
      "}\n";
  const LintResult result = lint_one("tools/copy.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 4);
  EXPECT_EQ(result.suppressed_count, 1u);
}

// A multi-line comment block still targets the code line after the block,
// not the second comment line.
TEST(SuppressionTest, CommentBlockSkipsToCode) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  // csblint: banned-functions-ok — the justification continues on\n"
      "  // a second comment line before the code\n"
      "  strcpy(d, s);\n"
      "}\n";
  const LintResult result = lint_one("tools/copy.cpp", content);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed_count, 1u);
}

// One comment can suppress several rules on the same line.
TEST(SuppressionTest, OneCommentSuppressesMultipleRules) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  // csblint: banned-functions-ok banned-nondeterminism-ok — test\n"
      "  strcpy(d, s); long t = time(nullptr);\n"
      "}\n";
  const LintResult result = lint_one("src/gen/multi.cpp", content);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed_count, 2u);
}

// An unused suppression is counted as zero, not an error — but a
// suppression naming an unknown rule is diagnosed so typos cannot silently
// disable enforcement.
TEST(SuppressionTest, UnknownRuleIsDiagnosed) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  strcpy(d, s);  // csblint: no-such-rule-ok — typo\n"
      "}\n";
  const LintResult result = lint_one("tools/typo.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 2u);  // bad-suppression + the strcpy
  EXPECT_EQ(result.diagnostics[0].rule, "bad-suppression");
  EXPECT_EQ(result.diagnostics[0].line, 2);
  EXPECT_NE(result.diagnostics[0].message.find("no-such-rule"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[1].rule, "banned-functions");
  EXPECT_EQ(result.suppressed_count, 0u);
}

// Two rules fire on the same line; suppressing one of them leaves the
// other reported — a suppression names rules, not lines.
TEST(SuppressionTest, SuppressingOneRuleLeavesTheOtherOnSameLine) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  // csblint: banned-functions-ok — test\n"
      "  strcpy(d, s); long t = time(nullptr);\n"
      "}\n";
  const LintResult result = lint_one("src/gen/pair.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "banned-nondeterminism");
  EXPECT_EQ(result.diagnostics[0].line, 3);
  EXPECT_EQ(result.suppressed_count, 1u);
}

// A v2 semantic-rule suppression composes with a second semantic rule in
// the same function: the fsync stays silenced while lock-discipline still
// reports the hand-rolled lock/unlock pair around it.
TEST(SuppressionTest, SemanticRuleSuppressionLeavesOtherSemanticRules) {
  const std::string content =
      "std::mutex flush_mutex;\n"
      "void flush(int fd) {\n"
      "  flush_mutex.lock();\n"
      "  fsync(fd);  // csblint: unchecked-syscall-ok — best-effort flush\n"
      "  flush_mutex.unlock();\n"
      "}\n";
  const LintResult result = lint_one("src/store/flush.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 2u);
  EXPECT_EQ(result.diagnostics[0].rule, "lock-discipline");
  EXPECT_EQ(result.diagnostics[0].line, 3);
  EXPECT_EQ(result.diagnostics[1].rule, "lock-discipline");
  EXPECT_EQ(result.diagnostics[1].line, 5);
  EXPECT_EQ(result.suppressed_count, 1u);
}

// Suppression and baseline subtract independently: the suppressed finding
// never reaches the result, the baselined one is subtracted afterwards,
// and only the genuinely new finding survives.
TEST(SuppressionTest, BaselineAndSuppressionCombine) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  strcpy(d, s);  // csblint: banned-functions-ok — test\n"
      "  strcpy(d, s);\n"
      "  long t = time(nullptr);\n"
      "}\n";
  LintResult result = lint_one("src/gen/combo.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 2u);
  apply_baseline(result,
                 parse_baseline("src/gen/combo.cpp:3:banned-functions\n"));
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "banned-nondeterminism");
  EXPECT_EQ(result.diagnostics[0].line, 4);
  EXPECT_EQ(result.suppressed_count, 1u);
  EXPECT_EQ(result.baselined_count, 1u);
}

TEST(SuppressionTest, TagWithoutRuleTokensIsDiagnosed) {
  const std::string content = "// csblint: please ignore this file\n";
  const LintResult result = lint_one("tools/empty.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "bad-suppression");
  EXPECT_NE(result.diagnostics[0].message.find("names no"),
            std::string::npos);
}

// ------------------------------------------------------------- rule list

// --list-rules output is pinned byte-for-byte so scripts can depend on it;
// regenerate tests/data/lint/list_rules.golden deliberately when the
// catalog changes.
TEST(RuleCatalogTest, ListRulesMatchesGolden) {
  EXPECT_EQ(list_rules_text(),
            read_file(std::string(CSB_TEST_DATA_DIR) +
                      "/lint/list_rules.golden"));
}

TEST(RuleCatalogTest, CatalogIsSortedAndComplete) {
  const std::vector<RuleInfo>& rules = rule_catalog();
  ASSERT_EQ(rules.size(), 12u);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1].name, rules[i].name);
  }
  for (const char* name :
       {"atomic-float-reduce", "bad-suppression", "banned-functions",
        "banned-nondeterminism", "counter-rng-reuse",
        "detached-thread-capture", "lock-discipline", "raw-parallel-reduce",
        "span-balance", "span-naming", "unchecked-syscall",
        "unordered-iteration"}) {
    EXPECT_TRUE(is_known_rule(name)) << name;
  }
  EXPECT_FALSE(is_known_rule("nope"));
}

// ------------------------------------------------------------ span names

TEST(SpanNameTest, GrammarAcceptsDocumentedFamilies) {
  EXPECT_EQ(span_name_families().size(), 21u);
  EXPECT_TRUE(span_name_families().contains("ball-drop"));
  EXPECT_TRUE(span_name_families().contains("skip-ahead"));
  EXPECT_TRUE(span_name_families().contains("store"));
  for (const std::string& family : span_name_families()) {
    EXPECT_TRUE(check_span_name(family).empty()) << family;
    // store is the only family with a validated second level; every other
    // family accepts arbitrary well-formed sub-segments.
    if (family != "store") {
      EXPECT_TRUE(check_span_name(family + ":sub:pass_2").empty()) << family;
    }
  }
}

TEST(SpanNameTest, GrammarValidatesStoreSubFamilies) {
  EXPECT_EQ(store_span_subfamilies().size(), 10u);
  for (const std::string& sub : store_span_subfamilies()) {
    EXPECT_TRUE(check_span_name("store:" + sub).empty()) << sub;
    EXPECT_TRUE(check_span_name("store:" + sub + ":pass_2").empty()) << sub;
  }
  // The parallel finish/verify pipeline's spans are all documented.
  EXPECT_TRUE(check_span_name("store:csr:count").empty());
  EXPECT_TRUE(check_span_name("store:csr:partition").empty());
  EXPECT_TRUE(check_span_name("store:csr:scatter").empty());
  EXPECT_TRUE(check_span_name("store:merge:seal").empty());
  EXPECT_TRUE(check_span_name("store:verify:shards").empty());
  EXPECT_TRUE(check_span_name("store:verify:csr").empty());
  EXPECT_NE(check_span_name("store:warmup"), "");
  EXPECT_NE(check_span_name("store:sub:pass_2"), "");
}

TEST(SpanNameTest, GrammarRejectsMalformedNames) {
  EXPECT_NE(check_span_name(""), "");
  EXPECT_NE(check_span_name("Shuffle"), "");       // uppercase segment
  EXPECT_NE(check_span_name("distinct:"), "");     // empty trailing segment
  EXPECT_NE(check_span_name("distinct:No Good"), "");
  EXPECT_NE(check_span_name("warmup:pass"), "");   // undocumented family
}

// -------------------------------------------------------- compile_commands

TEST(CompileCommandsTest, LoadsNormalizedSortedUniquePaths) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/csblint_compile_commands.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << "[\n"
        << "  {\"directory\": \"/work/build\", \"file\": \"../src/a.cpp\","
        << " \"command\": \"c++ -c a.cpp\"},\n"
        << "  {\"directory\": \"/work/build\", \"file\": \"/work/src/b.cpp\","
        << " \"command\": \"c++ -c b.cpp\"},\n"
        << "  {\"directory\": \"/work/build\","
        << " \"file\": \"../src/sub/../a.cpp\","
        << " \"command\": \"c++ -c a.cpp again\"}\n"
        << "]\n";
  }
  const std::vector<std::string> files = load_compile_commands(path);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "/work/src/a.cpp");
  EXPECT_EQ(files[1], "/work/src/b.cpp");
  std::remove(path.c_str());
}

TEST(CompileCommandsTest, MissingFileThrows) {
  EXPECT_THROW(load_compile_commands("/nonexistent/ccdb.json"), CsbError);
}

// ----------------------------------------------------------- determinism

// The linter's own output is deterministic: same inputs, same diagnostics,
// sorted by (file, line, rule) regardless of add_file order.
TEST(LintDeterminismTest, DiagnosticsSortedAndRepeatable) {
  const std::string nondet = fixture("nondet.cpp");
  const std::string banned = fixture("banned_fn.cpp");

  const auto run_with_order = [&](bool swap) {
    Linter linter{{}};
    if (swap) {
      linter.add_file("tools/banned_fn.cpp", banned);
      linter.add_file("src/gen/nondet.cpp", nondet);
    } else {
      linter.add_file("src/gen/nondet.cpp", nondet);
      linter.add_file("tools/banned_fn.cpp", banned);
    }
    return linter.run();
  };

  const LintResult a = run_with_order(false);
  const LintResult b = run_with_order(true);
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].file, b.diagnostics[i].file);
    EXPECT_EQ(a.diagnostics[i].line, b.diagnostics[i].line);
    EXPECT_EQ(a.diagnostics[i].rule, b.diagnostics[i].rule);
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message);
  }
  for (std::size_t i = 1; i < a.diagnostics.size(); ++i) {
    const Diagnostic& prev = a.diagnostics[i - 1];
    const Diagnostic& cur = a.diagnostics[i];
    EXPECT_LE(std::tie(prev.file, prev.line, prev.rule),
              std::tie(cur.file, cur.line, cur.rule));
  }
}

// Cross-file symbol binding: a `using` alias of an unordered container
// declared in a header flags iteration in another file.
TEST(LintDeterminismTest, AliasResolvesAcrossFiles) {
  Linter linter{{}};
  linter.add_file("src/ids/table.hpp",
                  "#include <unordered_map>\n"
                  "using HitTable = std::unordered_map<int, long>;\n");
  linter.add_file("src/ids/table.cpp",
                  "#include \"table.hpp\"\n"
                  "HitTable hits;\n"
                  "void walk() {\n"
                  "  for (const auto& [key, count] : hits) {\n"
                  "    emit(key, count);\n"
                  "  }\n"
                  "}\n");
  const LintResult result = linter.run();
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].file, "src/ids/table.cpp");
  EXPECT_EQ(result.diagnostics[0].line, 4);
  EXPECT_EQ(result.diagnostics[0].rule, "unordered-iteration");
}

// The parallel scan (--jobs) is a pure throughput knob: diagnostics,
// counters, and messages are byte-identical to the serial scan.
TEST(LintDeterminismTest, ParallelScanMatchesSerial) {
  const auto run_with_jobs = [](std::size_t jobs) {
    LintOptions options;
    options.jobs = jobs;
    Linter linter(std::move(options));
    linter.add_file("src/gen/nondet.cpp", fixture("nondet.cpp"));
    linter.add_file("tools/banned_fn.cpp", fixture("banned_fn.cpp"));
    linter.add_file("src/store/unchecked_syscall.cpp",
                    fixture("unchecked_syscall.cpp"));
    linter.add_file("src/gen/span_balance.cpp", fixture("span_balance.cpp"));
    linter.add_file("src/mr/lock_discipline.cpp",
                    fixture("lock_discipline.cpp"));
    return linter.run();
  };
  const LintResult serial = run_with_jobs(1);
  const LintResult parallel = run_with_jobs(4);
  ASSERT_EQ(serial.diagnostics.size(), parallel.diagnostics.size());
  for (std::size_t i = 0; i < serial.diagnostics.size(); ++i) {
    EXPECT_EQ(serial.diagnostics[i].file, parallel.diagnostics[i].file);
    EXPECT_EQ(serial.diagnostics[i].line, parallel.diagnostics[i].line);
    EXPECT_EQ(serial.diagnostics[i].rule, parallel.diagnostics[i].rule);
    EXPECT_EQ(serial.diagnostics[i].message, parallel.diagnostics[i].message);
  }
  EXPECT_EQ(serial.suppressed_count, parallel.suppressed_count);
  EXPECT_EQ(serial.files_linted, parallel.files_linted);
}

// ---------------------------------------------------------------- lexer

// Raw strings are opaque single tokens: banned identifiers inside them
// are data, not calls.
TEST(LexerTest, RawStringContentIsOpaque) {
  const LintResult result = lint_one(
      "src/gen/raw.cpp",
      "const char* doc = R\"(long t = time(nullptr); rand();)\";\n");
  EXPECT_TRUE(result.diagnostics.empty());
}

TEST(LexerTest, RawAndPrefixedStringsAreSingleTokens) {
  const std::vector<Token> tokens = tokenize(
      "auto a = R\"(no \" end)\";\n"
      "auto b = u8\"bytes\";\n"
      "auto c = LR\"x(nested )\" close)x\";\n");
  std::vector<std::string> strings;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kString) strings.push_back(t.text);
  }
  ASSERT_EQ(strings.size(), 3u);
  EXPECT_EQ(string_literal_value(strings[0]), "no \" end");
  EXPECT_EQ(string_literal_value(strings[1]), "bytes");
  EXPECT_EQ(string_literal_value(strings[2]), "nested )\" close");
}

// A literal spanning lines reports its first line, and the tokens after
// it land on the correct physical line.
TEST(LexerTest, MultiLineStringsKeepLineNumbersExact) {
  const std::vector<Token> tokens =
      tokenize("auto s = R\"(a\nb\nc)\";\nint tail = 1;\n");
  int string_line = 0;
  int tail_line = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokKind::kString) string_line = t.line;
    if (t.kind == TokKind::kIdent && t.text == "tail") tail_line = t.line;
  }
  EXPECT_EQ(string_line, 1);
  EXPECT_EQ(tail_line, 4);
}

// A backslash-newline splice is whitespace, not a token break: the
// continuation's tokens report their physical line (and lead it —
// suppression placement works on physical lines), and the `#` directive
// detector is NOT re-armed mid-logical-line.
TEST(LexerTest, BackslashNewlineSpliceContinuesTheLine) {
  const std::vector<Token> tokens = tokenize("int a \\\n= 2;\nint b = 3;\n");
  ASSERT_GE(tokens.size(), 8u);
  const auto find = [&](const std::string& text) -> const Token& {
    for (const Token& t : tokens) {
      if (t.text == text) return t;
    }
    static const Token missing{};
    ADD_FAILURE() << "token not found: " << text;
    return missing;
  };
  EXPECT_EQ(find("a").line, 1);
  EXPECT_EQ(find("=").line, 2);
  EXPECT_TRUE(find("=").first_on_line);
  EXPECT_EQ(find("b").line, 3);

  // `#` after a splice continues the logical line: it is lexed as a punct
  // token, not swallowed as a preprocessor directive.
  const std::vector<Token> spliced_hash = tokenize("int x \\\n# 1;\n");
  bool saw_hash = false;
  for (const Token& t : spliced_hash) {
    if (t.kind == TokKind::kPunct && t.text == "#") saw_hash = true;
  }
  EXPECT_TRUE(saw_hash);
}

// ----------------------------------------------------------- scope tree

std::size_t token_index(const std::vector<Token>& tokens,
                        std::string_view text) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text == text) return i;
  }
  ADD_FAILURE() << "token not found: " << text;
  return 0;
}

TEST(ScopeTreeTest, ClassifiesNamespaceFunctionLambdaBlock) {
  SourceFile file;
  file.path = "src/gen/demo.cpp";
  file.content =
      "namespace demo {\n"
      "struct Box { int v; };\n"
      "int grow(int n) {\n"
      "  if (n > 0) {\n"
      "    auto bump = [&](int d) { return n + d; };\n"
      "    return bump(1);\n"
      "  }\n"
      "  return n;\n"
      "}\n"
      "}  // namespace demo\n";
  file.tokens = tokenize(file.content);
  const ScopeTree tree = build_scope_tree(file);

  ASSERT_FALSE(tree.scopes.empty());
  EXPECT_EQ(tree.scopes[0].kind, ScopeKind::kFile);
  std::size_t namespaces = 0;
  std::size_t functions = 0;
  std::size_t lambdas = 0;
  std::size_t blocks = 0;
  for (const Scope& s : tree.scopes) {
    if (s.kind == ScopeKind::kNamespace) ++namespaces;
    if (s.kind == ScopeKind::kFunction) ++functions;
    if (s.kind == ScopeKind::kLambda) ++lambdas;
    if (s.kind == ScopeKind::kBlock) ++blocks;
  }
  EXPECT_EQ(namespaces, 2u);  // namespace demo + struct Box
  EXPECT_EQ(functions, 1u);
  EXPECT_EQ(lambdas, 1u);
  EXPECT_EQ(blocks, 1u);  // the if body

  // The lambda body belongs to the lambda; the statement declaring it
  // belongs to grow(); the struct member has no enclosing function.
  const int lam = tree.enclosing_function(token_index(file.tokens, "+"));
  ASSERT_GE(lam, 0);
  EXPECT_EQ(tree.scopes[lam].kind, ScopeKind::kLambda);
  EXPECT_TRUE(tree.scopes[lam].captures_ref);
  const int fn = tree.enclosing_function(token_index(file.tokens, "bump"));
  ASSERT_GE(fn, 0);
  EXPECT_EQ(tree.scopes[fn].kind, ScopeKind::kFunction);
  EXPECT_EQ(tree.scopes[fn].name, "grow");
  EXPECT_EQ(tree.enclosing_function(token_index(file.tokens, "v")), -1);
}

TEST(ScopeTreeTest, ParsesCaptureLists) {
  const auto check = [](const std::string& src, bool want_ref,
                        bool want_this) {
    const std::vector<Token> tokens = tokenize(src);
    const CaptureSummary s = parse_capture_list(tokens, 0);
    EXPECT_EQ(s.by_ref, want_ref) << src;
    EXPECT_EQ(s.by_this, want_this) << src;
  };
  check("[&] {}", true, false);
  check("[=] {}", false, false);
  check("[this] {}", false, true);
  check("[*this] {}", false, false);  // *this copies; it cannot dangle
  check("[=, &acc] {}", true, false);
  check("[value] {}", false, false);
}

// -------------------------------------------------------------- baseline

TEST(BaselineTest, ParsesCommentsBlanksAndEntries) {
  const Baseline b = parse_baseline(
      "# accepted findings\n"
      "\n"
      "src/a.cpp:12:span-naming\n"
      "tools/b.cpp:3:banned-functions\n");
  EXPECT_EQ(b.entries.size(), 2u);
  EXPECT_TRUE(b.entries.contains({"src/a.cpp", 12, "span-naming"}));
  EXPECT_TRUE(b.entries.contains({"tools/b.cpp", 3, "banned-functions"}));
}

TEST(BaselineTest, MalformedEntriesThrow) {
  EXPECT_THROW(parse_baseline("nonsense\n"), CsbError);
  EXPECT_THROW(parse_baseline("a.cpp:notanumber:rule\n"), CsbError);
  EXPECT_THROW(parse_baseline(":3:rule\n"), CsbError);
}

// --write-baseline output round-trips: applying it to the same scan
// subtracts every finding.
TEST(BaselineTest, WriteThenApplyRoundTripsToClean) {
  LintResult result = lint_one("tools/banned_fn.cpp", fixture("banned_fn.cpp"));
  const std::size_t found = result.diagnostics.size();
  ASSERT_GT(found, 0u);
  const Baseline base = parse_baseline(baseline_text(result));
  EXPECT_EQ(base.entries.size(), found);
  apply_baseline(result, base);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.baselined_count, found);
}

TEST(BaselineTest, PartialBaselineKeepsNewFindings) {
  LintResult result = lint_one("tools/banned_fn.cpp", fixture("banned_fn.cpp"));
  ASSERT_GT(result.diagnostics.size(), 1u);
  const Diagnostic first = result.diagnostics[0];
  const std::size_t before = result.diagnostics.size();
  Baseline base;
  base.entries.insert({first.file, first.line, first.rule});
  apply_baseline(result, base);
  EXPECT_EQ(result.diagnostics.size(), before - 1);
  EXPECT_EQ(result.baselined_count, 1u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_FALSE(d.file == first.file && d.line == first.line &&
                 d.rule == first.rule);
  }
}

// ----------------------------------------------------------------- SARIF

// The emitted log re-parses and satisfies the structural requirements of
// SARIF 2.1.0: versioned log, one run, full rule catalog on the driver,
// and each result pointing at a catalog rule and a physical location.
TEST(SarifTest, EmitsStructurallyValidLog) {
  const LintResult result =
      lint_one("tools/banned_fn.cpp", fixture("banned_fn.cpp"));
  ASSERT_FALSE(result.diagnostics.empty());
  const JsonValue log = parse_json(to_sarif(result));

  EXPECT_EQ(log.at("version").as_string(), "2.1.0");
  EXPECT_NE(log.at("$schema").as_string().find("sarif-2.1.0"),
            std::string::npos);
  const auto& runs = log.at("runs").items();
  ASSERT_EQ(runs.size(), 1u);

  const JsonValue& driver = runs[0].at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "csblint");
  const auto& rules = driver.at("rules").items();
  ASSERT_EQ(rules.size(), rule_catalog().size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].at("id").as_string(), rule_catalog()[i].name);
    EXPECT_FALSE(
        rules[i].at("shortDescription").at("text").as_string().empty());
  }

  const auto& results = runs[0].at("results").items();
  ASSERT_EQ(results.size(), result.diagnostics.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    const JsonValue& r = results[i];
    EXPECT_EQ(r.at("ruleId").as_string(), d.rule);
    const auto rule_index =
        static_cast<std::size_t>(r.at("ruleIndex").as_number());
    ASSERT_LT(rule_index, rules.size());
    EXPECT_EQ(rules[rule_index].at("id").as_string(), d.rule);
    EXPECT_EQ(r.at("level").as_string(), "error");
    EXPECT_EQ(r.at("message").at("text").as_string(), d.message);
    const auto& locations = r.at("locations").items();
    ASSERT_EQ(locations.size(), 1u);
    const JsonValue& physical = locations[0].at("physicalLocation");
    EXPECT_EQ(physical.at("artifactLocation").at("uri").as_string(), d.file);
    EXPECT_EQ(static_cast<int>(physical.at("region").at("startLine")
                                   .as_number()),
              d.line);
  }
}

TEST(SarifTest, CleanResultEmitsEmptyResultsArray) {
  const JsonValue log = parse_json(to_sarif(LintResult{}));
  const auto& runs = log.at("runs").items();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].at("results").items().empty());
  // The driver still advertises the full catalog on a clean run.
  EXPECT_EQ(runs[0].at("tool").at("driver").at("rules").items().size(),
            rule_catalog().size());
}

}  // namespace
}  // namespace csb::lint
