// Tests for csblint (src/lint/): the determinism & concurrency static
// analysis that enforces the repo's byte-identical-parallelism contract.
//
// Fixture files under tests/data/lint/ carry "// VIOLATION" markers on every
// line a rule must flag; each fixture also contains exactly one suppressed
// case, so the tests prove both 100% detection of the seeded violations and
// that suppression comments silence exactly one line.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lint.hpp"
#include "lint/rules.hpp"
#include "util/error.hpp"

namespace csb::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(CSB_TEST_DATA_DIR) + "/lint/" + name);
}

/// 1-based line numbers carrying a "// VIOLATION" marker comment.
std::set<int> marker_lines(const std::string& content) {
  std::set<int> lines;
  std::istringstream in(content);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.find("// VIOLATION") != std::string::npos) lines.insert(number);
  }
  return lines;
}

LintResult lint_one(const std::string& virtual_path,
                    const std::string& content, LintOptions options = {}) {
  Linter linter(std::move(options));
  linter.add_file(virtual_path, content);
  return linter.run();
}

std::set<int> diagnostic_lines(const LintResult& result,
                               const std::string& rule) {
  std::set<int> lines;
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.rule, rule) << "unexpected rule at " << d.file << ":"
                            << d.line << ": " << d.message;
    lines.insert(d.line);
  }
  return lines;
}

struct FixtureCase {
  const char* file;          // under tests/data/lint/
  const char* virtual_path;  // scoping path handed to the linter
  const char* rule;          // the one rule the fixture exercises
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

// Every marker line is detected, nothing else fires, and the fixture's one
// suppressed case is counted instead of reported.
TEST_P(LintFixtureTest, DetectsAllSeededViolations) {
  const FixtureCase& param = GetParam();
  const std::string content = fixture(param.file);
  const std::set<int> expected = marker_lines(content);
  ASSERT_FALSE(expected.empty()) << param.file << " seeds no violations";

  const LintResult result = lint_one(param.virtual_path, content);
  EXPECT_EQ(diagnostic_lines(result, param.rule), expected) << param.file;
  EXPECT_EQ(result.suppressed_count, 1u)
      << param.file << " must contain exactly one suppressed case";
  EXPECT_EQ(result.files_linted, 1u);
  for (const Diagnostic& d : result.diagnostics) {
    EXPECT_EQ(d.file, param.virtual_path);
    EXPECT_EQ(d.severity, Severity::kError);
    EXPECT_FALSE(d.message.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        FixtureCase{"atomic_reduce.cpp", "src/graph/atomic_reduce.cpp",
                    "atomic-float-reduce"},
        FixtureCase{"nondet.cpp", "src/gen/nondet.cpp",
                    "banned-nondeterminism"},
        FixtureCase{"unordered.cpp", "src/stats/unordered.cpp",
                    "unordered-iteration"},
        FixtureCase{"reduce.cpp", "src/mr/reduce.cpp", "raw-parallel-reduce"},
        FixtureCase{"spans.cpp", "src/obs/spans.cpp", "span-naming"},
        FixtureCase{"banned_fn.cpp", "tools/banned_fn.cpp",
                    "banned-functions"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.rule;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// Scoped rules stay quiet outside their directories: the nondeterminism
// fixture is clean when it pretends to be a tool, and the unordered fixture
// is clean outside the order-critical modules.
TEST(LintScopeTest, ScopedRulesIgnoreOtherDirectories) {
  const LintResult nondet =
      lint_one("tools/nondet.cpp", fixture("nondet.cpp"));
  EXPECT_TRUE(nondet.diagnostics.empty());

  const LintResult unordered =
      lint_one("docs/examples/unordered.cpp", fixture("unordered.cpp"));
  EXPECT_TRUE(unordered.diagnostics.empty());

  const LintResult atomics =
      lint_one("tools/atomic_reduce.cpp", fixture("atomic_reduce.cpp"));
  EXPECT_TRUE(atomics.diagnostics.empty());
}

TEST(LintScopeTest, RuleFilterSelectsSingleRule) {
  const std::string content =
      "double total = 0.0;\n"
      "void f(char* d, const char* s, ThreadPool* pool) {\n"
      "  strcpy(d, s);\n"
      "  parallel_for(pool, 0, 9, [&](std::size_t i) { total += 1.0; });\n"
      "}\n";
  const LintResult result =
      lint_one("src/gen/mixed.cpp", content, {{"banned-functions"}});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "banned-functions");
  EXPECT_EQ(result.diagnostics[0].line, 3);
}

TEST(LintScopeTest, UnknownRuleInOptionsThrows) {
  EXPECT_THROW(Linter({{"no-such-rule"}}), CsbError);
}

// ------------------------------------------------------------ suppression

// A trailing suppression silences its own line and nothing else: the
// identical violation on the next line still fires.
TEST(SuppressionTest, TrailingCommentSilencesExactlyOneLine) {
  const std::string content =
      "int parse(const char* s) {\n"
      "  int a = atoi(s);  // csblint: banned-functions-ok — test case\n"
      "  int b = atoi(s);\n"
      "  return a + b;\n"
      "}\n";
  const LintResult result = lint_one("tools/parse.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 3);
  EXPECT_EQ(result.suppressed_count, 1u);
}

// A standalone suppression comment targets the next code line only.
TEST(SuppressionTest, StandaloneCommentSilencesNextCodeLine) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  // csblint: banned-functions-ok — test case\n"
      "  strcpy(d, s);\n"
      "  strcpy(d, s);\n"
      "}\n";
  const LintResult result = lint_one("tools/copy.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].line, 4);
  EXPECT_EQ(result.suppressed_count, 1u);
}

// A multi-line comment block still targets the code line after the block,
// not the second comment line.
TEST(SuppressionTest, CommentBlockSkipsToCode) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  // csblint: banned-functions-ok — the justification continues on\n"
      "  // a second comment line before the code\n"
      "  strcpy(d, s);\n"
      "}\n";
  const LintResult result = lint_one("tools/copy.cpp", content);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed_count, 1u);
}

// One comment can suppress several rules on the same line.
TEST(SuppressionTest, OneCommentSuppressesMultipleRules) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  // csblint: banned-functions-ok banned-nondeterminism-ok — test\n"
      "  strcpy(d, s); long t = time(nullptr);\n"
      "}\n";
  const LintResult result = lint_one("src/gen/multi.cpp", content);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(result.suppressed_count, 2u);
}

// An unused suppression is counted as zero, not an error — but a
// suppression naming an unknown rule is diagnosed so typos cannot silently
// disable enforcement.
TEST(SuppressionTest, UnknownRuleIsDiagnosed) {
  const std::string content =
      "void f(char* d, const char* s) {\n"
      "  strcpy(d, s);  // csblint: no-such-rule-ok — typo\n"
      "}\n";
  const LintResult result = lint_one("tools/typo.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 2u);  // bad-suppression + the strcpy
  EXPECT_EQ(result.diagnostics[0].rule, "bad-suppression");
  EXPECT_EQ(result.diagnostics[0].line, 2);
  EXPECT_NE(result.diagnostics[0].message.find("no-such-rule"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[1].rule, "banned-functions");
  EXPECT_EQ(result.suppressed_count, 0u);
}

TEST(SuppressionTest, TagWithoutRuleTokensIsDiagnosed) {
  const std::string content = "// csblint: please ignore this file\n";
  const LintResult result = lint_one("tools/empty.cpp", content);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].rule, "bad-suppression");
  EXPECT_NE(result.diagnostics[0].message.find("names no"),
            std::string::npos);
}

// ------------------------------------------------------------- rule list

// --list-rules output is pinned byte-for-byte so scripts can depend on it;
// regenerate tests/data/lint/list_rules.golden deliberately when the
// catalog changes.
TEST(RuleCatalogTest, ListRulesMatchesGolden) {
  EXPECT_EQ(list_rules_text(),
            read_file(std::string(CSB_TEST_DATA_DIR) +
                      "/lint/list_rules.golden"));
}

TEST(RuleCatalogTest, CatalogIsSortedAndComplete) {
  const std::vector<RuleInfo>& rules = rule_catalog();
  ASSERT_EQ(rules.size(), 7u);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1].name, rules[i].name);
  }
  for (const char* name :
       {"atomic-float-reduce", "bad-suppression", "banned-functions",
        "banned-nondeterminism", "raw-parallel-reduce", "span-naming",
        "unordered-iteration"}) {
    EXPECT_TRUE(is_known_rule(name)) << name;
  }
  EXPECT_FALSE(is_known_rule("nope"));
}

// ------------------------------------------------------------ span names

TEST(SpanNameTest, GrammarAcceptsDocumentedFamilies) {
  EXPECT_EQ(span_name_families().size(), 21u);
  EXPECT_TRUE(span_name_families().contains("ball-drop"));
  EXPECT_TRUE(span_name_families().contains("skip-ahead"));
  EXPECT_TRUE(span_name_families().contains("store"));
  for (const std::string& family : span_name_families()) {
    EXPECT_TRUE(check_span_name(family).empty()) << family;
    // store is the only family with a validated second level; every other
    // family accepts arbitrary well-formed sub-segments.
    if (family != "store") {
      EXPECT_TRUE(check_span_name(family + ":sub:pass_2").empty()) << family;
    }
  }
}

TEST(SpanNameTest, GrammarValidatesStoreSubFamilies) {
  EXPECT_EQ(store_span_subfamilies().size(), 10u);
  for (const std::string& sub : store_span_subfamilies()) {
    EXPECT_TRUE(check_span_name("store:" + sub).empty()) << sub;
    EXPECT_TRUE(check_span_name("store:" + sub + ":pass_2").empty()) << sub;
  }
  // The parallel finish/verify pipeline's spans are all documented.
  EXPECT_TRUE(check_span_name("store:csr:count").empty());
  EXPECT_TRUE(check_span_name("store:csr:partition").empty());
  EXPECT_TRUE(check_span_name("store:csr:scatter").empty());
  EXPECT_TRUE(check_span_name("store:merge:seal").empty());
  EXPECT_TRUE(check_span_name("store:verify:shards").empty());
  EXPECT_TRUE(check_span_name("store:verify:csr").empty());
  EXPECT_NE(check_span_name("store:warmup"), "");
  EXPECT_NE(check_span_name("store:sub:pass_2"), "");
}

TEST(SpanNameTest, GrammarRejectsMalformedNames) {
  EXPECT_NE(check_span_name(""), "");
  EXPECT_NE(check_span_name("Shuffle"), "");       // uppercase segment
  EXPECT_NE(check_span_name("distinct:"), "");     // empty trailing segment
  EXPECT_NE(check_span_name("distinct:No Good"), "");
  EXPECT_NE(check_span_name("warmup:pass"), "");   // undocumented family
}

// -------------------------------------------------------- compile_commands

TEST(CompileCommandsTest, LoadsNormalizedSortedUniquePaths) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/csblint_compile_commands.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << "[\n"
        << "  {\"directory\": \"/work/build\", \"file\": \"../src/a.cpp\","
        << " \"command\": \"c++ -c a.cpp\"},\n"
        << "  {\"directory\": \"/work/build\", \"file\": \"/work/src/b.cpp\","
        << " \"command\": \"c++ -c b.cpp\"},\n"
        << "  {\"directory\": \"/work/build\","
        << " \"file\": \"../src/sub/../a.cpp\","
        << " \"command\": \"c++ -c a.cpp again\"}\n"
        << "]\n";
  }
  const std::vector<std::string> files = load_compile_commands(path);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "/work/src/a.cpp");
  EXPECT_EQ(files[1], "/work/src/b.cpp");
  std::remove(path.c_str());
}

TEST(CompileCommandsTest, MissingFileThrows) {
  EXPECT_THROW(load_compile_commands("/nonexistent/ccdb.json"), CsbError);
}

// ----------------------------------------------------------- determinism

// The linter's own output is deterministic: same inputs, same diagnostics,
// sorted by (file, line, rule) regardless of add_file order.
TEST(LintDeterminismTest, DiagnosticsSortedAndRepeatable) {
  const std::string nondet = fixture("nondet.cpp");
  const std::string banned = fixture("banned_fn.cpp");

  const auto run_with_order = [&](bool swap) {
    Linter linter{{}};
    if (swap) {
      linter.add_file("tools/banned_fn.cpp", banned);
      linter.add_file("src/gen/nondet.cpp", nondet);
    } else {
      linter.add_file("src/gen/nondet.cpp", nondet);
      linter.add_file("tools/banned_fn.cpp", banned);
    }
    return linter.run();
  };

  const LintResult a = run_with_order(false);
  const LintResult b = run_with_order(true);
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (std::size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].file, b.diagnostics[i].file);
    EXPECT_EQ(a.diagnostics[i].line, b.diagnostics[i].line);
    EXPECT_EQ(a.diagnostics[i].rule, b.diagnostics[i].rule);
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message);
  }
  for (std::size_t i = 1; i < a.diagnostics.size(); ++i) {
    const Diagnostic& prev = a.diagnostics[i - 1];
    const Diagnostic& cur = a.diagnostics[i];
    EXPECT_LE(std::tie(prev.file, prev.line, prev.rule),
              std::tie(cur.file, cur.line, cur.rule));
  }
}

// Cross-file symbol binding: a `using` alias of an unordered container
// declared in a header flags iteration in another file.
TEST(LintDeterminismTest, AliasResolvesAcrossFiles) {
  Linter linter{{}};
  linter.add_file("src/ids/table.hpp",
                  "#include <unordered_map>\n"
                  "using HitTable = std::unordered_map<int, long>;\n");
  linter.add_file("src/ids/table.cpp",
                  "#include \"table.hpp\"\n"
                  "HitTable hits;\n"
                  "void walk() {\n"
                  "  for (const auto& [key, count] : hits) {\n"
                  "    emit(key, count);\n"
                  "  }\n"
                  "}\n");
  const LintResult result = linter.run();
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].file, "src/ids/table.cpp");
  EXPECT_EQ(result.diagnostics[0].line, 4);
  EXPECT_EQ(result.diagnostics[0].rule, "unordered-iteration");
}

}  // namespace
}  // namespace csb::lint
