// Unit tests for src/mr: list scheduling, the virtual-cluster simulator,
// and Dataset transformations.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "mr/cluster.hpp"
#include "mr/dataset.hpp"
#include "util/error.hpp"

namespace csb {
namespace {

// -------------------------------------------------------- list scheduling

struct ScheduleCase {
  std::vector<double> durations;
  std::size_t slots;
  double makespan;
};

class ListScheduleTest : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(ListScheduleTest, ComputesMakespan) {
  const auto& c = GetParam();
  EXPECT_NEAR(list_schedule_makespan(c.durations, c.slots), c.makespan, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ListScheduleTest,
    ::testing::Values(
        ScheduleCase{{}, 4, 0.0},
        ScheduleCase{{5.0}, 1, 5.0},
        ScheduleCase{{5.0}, 8, 5.0},
        ScheduleCase{{1, 1, 1, 1}, 2, 2.0},
        ScheduleCase{{1, 1, 1, 1}, 4, 1.0},
        ScheduleCase{{3, 1, 1, 1}, 2, 3.0},
        // Greedy order matters: tasks assigned in sequence to the least
        // loaded slot.
        ScheduleCase{{2, 2, 3}, 2, 5.0}));

TEST(ListScheduleTest, MoreSlotsNeverSlower) {
  const std::vector<double> durations = {3, 1, 4, 1, 5, 9, 2, 6};
  double prev = 1e18;
  for (std::size_t slots = 1; slots <= 8; ++slots) {
    const double makespan = list_schedule_makespan(durations, slots);
    EXPECT_LE(makespan, prev);
    prev = makespan;
  }
}

TEST(ListScheduleTest, RejectsZeroSlots) {
  EXPECT_THROW(list_schedule_makespan({1.0}, 0), CsbError);
}

// ------------------------------------------------------------ ClusterSim

TEST(ClusterSimTest, StageMetricsAccumulate) {
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) tasks.push_back([&ran] { ++ran; });
  const StageMetrics stage = cluster.run_stage("s", std::move(tasks));
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(stage.tasks, 8u);
  EXPECT_GE(stage.task_seconds, stage.makespan_seconds);
  EXPECT_EQ(cluster.metrics().stages, 1u);
  EXPECT_EQ(cluster.metrics().tasks, 8u);
}

TEST(ClusterSimTest, SerialTimeCountsFully) {
  ClusterSim cluster(ClusterConfig{.nodes = 4, .cores_per_node = 4});
  cluster.run_serial("driver", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  EXPECT_GE(cluster.metrics().serial_seconds, 0.005);
  EXPECT_DOUBLE_EQ(cluster.metrics().simulated_seconds,
                   cluster.metrics().serial_seconds);
}

TEST(ClusterSimTest, SerialSegmentsAreRecordedByName) {
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  const auto spin = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  cluster.run_serial("collapse", spin);
  cluster.run_serial("kronfit", spin);
  cluster.run_serial("kronfit", spin);  // repeated names aggregate
  const auto& segments = cluster.metrics().serial_segments;
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].name, "collapse");
  EXPECT_EQ(segments[1].name, "kronfit");
  EXPECT_GT(segments[0].seconds, 0.0);
  EXPECT_GT(segments[1].seconds, segments[0].seconds);  // two sleeps vs one
  // The named breakdown sums to the serial total.
  EXPECT_NEAR(segments[0].seconds + segments[1].seconds,
              cluster.metrics().serial_seconds, 1e-12);
  cluster.reset_metrics();
  EXPECT_TRUE(cluster.metrics().serial_segments.empty());
}

TEST(ClusterSimTest, MoreVirtualCoresShrinkSimulatedTime) {
  const auto run = [](std::size_t nodes) {
    ClusterSim cluster(ClusterConfig{.nodes = nodes, .cores_per_node = 1});
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) {
      tasks.push_back([] {
        volatile double x = 0;
        for (int k = 0; k < 400000; ++k) x = x + k;
      });
    }
    cluster.run_stage("work", std::move(tasks));
    return cluster.metrics().simulated_seconds;
  };
  const double t1 = run(1);
  const double t8 = run(8);
  EXPECT_LT(t8, t1);             // strong scaling in virtual time
  EXPECT_GT(t8, t1 / 32.0);      // but bounded by the task structure
}

TEST(ClusterSimTest, StageExceptionPropagates) {
  ClusterSim cluster(ClusterConfig{.nodes = 1, .cores_per_node = 2});
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw CsbError("task failed"); });
  EXPECT_THROW(cluster.run_stage("bad", std::move(tasks)), CsbError);
}

TEST(ClusterSimTest, ResetClearsMetrics) {
  ClusterSim cluster(ClusterConfig{.nodes = 1, .cores_per_node = 1});
  cluster.run_serial("x", [] {});
  cluster.reset_metrics();
  EXPECT_DOUBLE_EQ(cluster.metrics().simulated_seconds, 0.0);
  EXPECT_EQ(cluster.metrics().stages, 0u);
}

TEST(ClusterSimTest, NodeOfPartitionRoundRobin) {
  ClusterSim cluster(ClusterConfig{.nodes = 3, .cores_per_node = 1});
  EXPECT_EQ(cluster.node_of_partition(0), 0u);
  EXPECT_EQ(cluster.node_of_partition(4), 1u);
  EXPECT_EQ(cluster.node_of_partition(8), 2u);
}

TEST(ClusterSimTest, RejectsEmptyConfig) {
  EXPECT_THROW(ClusterSim(ClusterConfig{.nodes = 0, .cores_per_node = 1}),
               CsbError);
}

// --------------------------------------------------------------- Dataset

ClusterConfig small_cluster() { return ClusterConfig{.nodes = 2, .cores_per_node = 2}; }

TEST(DatasetTest, FromVectorBalancesPartitions) {
  ClusterSim cluster(small_cluster());
  std::vector<int> data(10);
  std::iota(data.begin(), data.end(), 0);
  const auto ds = Dataset<int>::from_vector(cluster, data, 3);
  EXPECT_EQ(ds.num_partitions(), 3u);
  EXPECT_EQ(ds.count(), 10u);
  EXPECT_EQ(ds.partition(0).size(), 4u);
  EXPECT_EQ(ds.partition(1).size(), 3u);
  EXPECT_EQ(ds.partition(2).size(), 3u);
  EXPECT_EQ(ds.collect(), data);
}

TEST(DatasetTest, GenerateBuildsPartitionsInParallel) {
  ClusterSim cluster(small_cluster());
  const auto ds = Dataset<std::size_t>::generate(
      cluster, 4, [](std::size_t p) {
        return std::vector<std::size_t>(p + 1, p);
      });
  EXPECT_EQ(ds.count(), 1u + 2 + 3 + 4);
  EXPECT_EQ(ds.partition(3).size(), 4u);
  EXPECT_EQ(ds.partition(3).front(), 3u);
}

TEST(DatasetTest, MapTransformsEveryElement) {
  ClusterSim cluster(small_cluster());
  const auto ds = Dataset<int>::from_vector(cluster, {1, 2, 3, 4, 5}, 2);
  const auto doubled = ds.map([](const int& x) { return x * 2; });
  EXPECT_EQ(doubled.collect(), (std::vector<int>{2, 4, 6, 8, 10}));
}

TEST(DatasetTest, FilterKeepsMatching) {
  ClusterSim cluster(small_cluster());
  const auto ds = Dataset<int>::from_vector(cluster, {1, 2, 3, 4, 5, 6}, 3);
  const auto even = ds.filter([](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(even.collect(), (std::vector<int>{2, 4, 6}));
}

TEST(DatasetTest, FlatMapExpands) {
  ClusterSim cluster(small_cluster());
  const auto ds = Dataset<int>::from_vector(cluster, {1, 3}, 2);
  const auto repeated = ds.flat_map(
      [](const int& x) { return std::vector<int>(x, x); });
  EXPECT_EQ(repeated.collect(), (std::vector<int>{1, 3, 3, 3}));
}

class DatasetSampleTest : public ::testing::TestWithParam<double> {};

TEST_P(DatasetSampleTest, FractionApproximatelyRespected) {
  const double fraction = GetParam();
  ClusterSim cluster(small_cluster());
  std::vector<int> data(20000, 1);
  const auto ds = Dataset<int>::from_vector(cluster, data, 4);
  const auto sampled = ds.sample(fraction, 7);
  const double expected = fraction * 20000;
  EXPECT_NEAR(static_cast<double>(sampled.count()), expected,
              expected * 0.05 + 50);
}

INSTANTIATE_TEST_SUITE_P(Fractions, DatasetSampleTest,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0, 1.5, 2.0, 3.0));

TEST(DatasetTest, SampleIsDeterministicPerSeed) {
  ClusterSim cluster(small_cluster());
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  const auto ds = Dataset<int>::from_vector(cluster, data, 4);
  EXPECT_EQ(ds.sample(0.3, 42).collect(), ds.sample(0.3, 42).collect());
  EXPECT_NE(ds.sample(0.3, 42).collect(), ds.sample(0.3, 43).collect());
}

TEST(DatasetTest, DistinctRemovesDuplicates) {
  ClusterSim cluster(small_cluster());
  const auto ds = Dataset<int>::from_vector(
      cluster, {5, 1, 5, 2, 1, 5, 9, 2, 2}, 3);
  const auto unique = ds.distinct(
      [](const int& x) { return static_cast<std::uint64_t>(x); });
  auto values = unique.collect();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<int>{1, 2, 5, 9}));
}

TEST(DatasetTest, DistinctOnAlreadyUniqueKeepsAll) {
  ClusterSim cluster(small_cluster());
  std::vector<int> data(500);
  std::iota(data.begin(), data.end(), 0);
  const auto ds = Dataset<int>::from_vector(cluster, data, 4);
  EXPECT_EQ(ds.distinct([](const int& x) {
              return static_cast<std::uint64_t>(x);
            }).count(),
            500u);
}

TEST(DatasetTest, DistinctMergesDuplicatesSplitAcrossPartitions) {
  ClusterSim cluster(small_cluster());
  // Every key appears in every partition: the counted shuffle must route all
  // copies of a key to the same merge task, whichever partition held them.
  std::vector<int> data;
  for (int copy = 0; copy < 4; ++copy) {
    for (int key = 0; key < 50; ++key) data.push_back(key);
  }
  const auto ds = Dataset<int>::from_vector(cluster, data, 4);
  auto values = ds.distinct([](const int& x) {
                    return static_cast<std::uint64_t>(x);
                  }).collect();
  std::sort(values.begin(), values.end());
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(values, expected);
}

TEST(DatasetTest, DistinctIsDeterministic) {
  ClusterSim cluster(small_cluster());
  std::vector<int> data;
  for (int i = 0; i < 300; ++i) data.push_back(i % 97);
  const auto ds = Dataset<int>::from_vector(cluster, data, 5);
  const auto key = [](const int& x) { return static_cast<std::uint64_t>(x); };
  // First occurrence wins in (partition, offset) order; repeated runs give
  // identical element order, not just identical sets.
  EXPECT_EQ(ds.distinct(key).collect(), ds.distinct(key).collect());
}

TEST(DatasetTest, DistinctBalancesSkewedShuffleKeys) {
  // Packed edge keys (src<<32|dst) share their low bits whenever dst is
  // constant, and `key % parts` alone would then route every element to one
  // merge task — a serial stage in disguise. The shuffle target must mix
  // the key first.
  ClusterSim cluster(small_cluster());
  constexpr std::uint64_t kKeys = 4096;
  constexpr std::size_t kParts = 8;
  std::vector<std::uint64_t> data;
  data.reserve(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) data.push_back((i << 32) | 7u);
  const auto ds = Dataset<std::uint64_t>::from_vector(cluster, data, kParts);
  const auto unique =
      ds.distinct([](const std::uint64_t& x) { return x; });
  ASSERT_EQ(unique.count(), kKeys);
  std::size_t largest = 0;
  for (std::size_t p = 0; p < unique.num_partitions(); ++p) {
    largest = std::max(largest, unique.partition(p).size());
  }
  // Perfectly uniform would be kKeys / kParts = 512; without mixing one
  // partition holds all 4096.
  EXPECT_LT(largest, kKeys / 2);
}

TEST(DatasetTest, SampleFractionTwoEmitsExactlyTwoCopies) {
  ClusterSim cluster(small_cluster());
  std::vector<int> data(200);
  std::iota(data.begin(), data.end(), 0);
  const auto ds = Dataset<int>::from_vector(cluster, data, 4);
  // fraction = 2.0 has no fractional part: every element is emitted exactly
  // twice (the PGPBA Kronecker-parity configuration), no randomness at all.
  const auto doubled = ds.sample(2.0, 123);
  EXPECT_EQ(doubled.count(), 400u);
  auto values = doubled.collect();
  std::sort(values.begin(), values.end());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(values[2 * i], i);
    EXPECT_EQ(values[2 * i + 1], i);
  }
}

TEST(DatasetTest, ConcatMoveMatchesConcat) {
  ClusterSim cluster(small_cluster());
  const std::vector<int> left = {1, 2, 3, 4};
  const std::vector<int> right = {5, 6};
  const auto expected =
      Dataset<int>::from_vector(cluster, left, 2)
          .concat(Dataset<int>::from_vector(cluster, right, 2))
          .collect();
  auto a = Dataset<int>::from_vector(cluster, left, 2);
  auto b = Dataset<int>::from_vector(cluster, right, 2);
  const auto joined = Dataset<int>::concat_move(std::move(a), std::move(b));
  EXPECT_EQ(joined.num_partitions(), 4u);
  EXPECT_EQ(joined.collect(), expected);
}

TEST(DatasetTest, CoalescedPreservesElementsAndOrder) {
  ClusterSim cluster(small_cluster());
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 0);
  const auto coalesced =
      Dataset<int>::from_vector(cluster, data, 10).coalesced(3);
  EXPECT_EQ(coalesced.num_partitions(), 3u);
  EXPECT_EQ(coalesced.collect(), data);
  // Already at/below the target: no-op, partition count unchanged.
  EXPECT_EQ(Dataset<int>::from_vector(cluster, data, 2).coalesced(3)
                .num_partitions(),
            2u);
}

TEST(DatasetTest, FlatMapIntoMatchesFlatMap) {
  ClusterSim cluster(small_cluster());
  std::vector<int> data(50);
  std::iota(data.begin(), data.end(), 0);
  const auto ds = Dataset<int>::from_vector(cluster, data, 4);
  const auto copies = ds.flat_map([](const int& x) {
    return std::vector<int>(static_cast<std::size_t>(x % 3), x);
  });
  const auto sunk = ds.flat_map_into<int>([](const int& x, const auto& emit) {
    for (int c = 0; c < x % 3; ++c) emit(x);
  });
  EXPECT_EQ(sunk.collect(), copies.collect());
  EXPECT_EQ(sunk.num_partitions(), ds.num_partitions());
}

TEST(DatasetTest, ConcatJoinsPartitions) {
  ClusterSim cluster(small_cluster());
  const auto a = Dataset<int>::from_vector(cluster, {1, 2}, 1);
  const auto b = Dataset<int>::from_vector(cluster, {3}, 1);
  const auto joined = a.concat(b);
  EXPECT_EQ(joined.num_partitions(), 2u);
  EXPECT_EQ(joined.collect(), (std::vector<int>{1, 2, 3}));
}

TEST(DatasetTest, BytesAndPerNodeBytes) {
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 1});
  const auto ds = Dataset<std::uint64_t>::from_vector(
      cluster, std::vector<std::uint64_t>(100, 1), 4);
  EXPECT_EQ(ds.bytes(), 100 * sizeof(std::uint64_t));
  const auto per_node = ds.per_node_bytes();
  ASSERT_EQ(per_node.size(), 2u);
  EXPECT_EQ(per_node[0] + per_node[1], ds.bytes());
  EXPECT_EQ(per_node[0], per_node[1]);  // 25+25 elements each
}

TEST(DatasetTest, OperationsRecordStages) {
  ClusterSim cluster(small_cluster());
  const auto ds = Dataset<int>::from_vector(cluster, {1, 2, 3}, 2);
  cluster.reset_metrics();
  (void)ds.map([](const int& x) { return x; });
  (void)ds.filter([](const int&) { return true; });
  (void)ds.distinct([](const int& x) { return static_cast<std::uint64_t>(x); });
  // map + filter + distinct(shuffle+merge) = 4 stages.
  EXPECT_EQ(cluster.metrics().stages, 4u);
}

TEST(DatasetTest, ReduceSumsElements) {
  ClusterSim cluster(small_cluster());
  std::vector<int> data(100);
  std::iota(data.begin(), data.end(), 1);
  const auto ds = Dataset<int>::from_vector(cluster, data, 7);
  EXPECT_EQ(ds.reduce(0, [](int a, int b) { return a + b; }), 5050);
  EXPECT_EQ(ds.reduce(0, [](int a, int b) { return std::max(a, b); }), 100);
}

TEST(DatasetTest, AggregateWithDifferentResultType) {
  ClusterSim cluster(small_cluster());
  const auto ds = Dataset<int>::from_vector(cluster, {1, 2, 3, 4, 5}, 3);
  // Count odd elements into a u64.
  const auto odd_count = ds.aggregate(
      std::uint64_t{0},
      [](std::uint64_t acc, int x) { return acc + (x % 2); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(odd_count, 3u);
}

TEST(DatasetTest, ReduceOnEmptyPartitionsGivesIdentity) {
  // `identity` must be the combine's neutral element (it seeds every
  // partition and the driver merge).
  ClusterSim cluster(small_cluster());
  std::vector<std::vector<int>> empty(4);
  const Dataset<int> ds(cluster, std::move(empty));
  EXPECT_EQ(ds.reduce(0, [](int a, int b) { return a + b; }), 0);
  EXPECT_EQ(ds.reduce(1, [](int a, int b) { return a * b; }), 1);
}

TEST(DatasetTest, RejectsZeroPartitions) {
  ClusterSim cluster(small_cluster());
  EXPECT_THROW(Dataset<int>::from_vector(cluster, {1}, 0), CsbError);
}

}  // namespace
}  // namespace csb
