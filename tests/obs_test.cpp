// Unit tests for src/obs (the csb.trace.v1 observability layer) and the
// generator registry: NDJSON rendering is pinned byte-for-byte by a golden
// file, parsing round-trips the writer's output, ClusterSim span bookkeeping
// reconciles with JobMetrics to 1e-9, and registered generators stay
// deterministic per fixed seed.
//
// Regenerate the golden file after an intentional schema change with
//   CSB_REGEN_GOLDEN=1 ./tests/obs_test --gtest_filter='*Golden*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generator.hpp"
#include "mr/cluster.hpp"
#include "obs/json.hpp"
#include "obs/memwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "seed/seed.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"

namespace csb {
namespace {

// ------------------------------------------------------------------ json

TEST(JsonTest, ParsesScalarsArraysAndObjects) {
  const JsonValue value =
      parse_json(R"({"a": 1.5, "b": "x", "c": [1, 2], "d": {"e": true}})");
  ASSERT_TRUE(value.is_object());
  EXPECT_DOUBLE_EQ(value.at("a").as_number(), 1.5);
  EXPECT_EQ(value.at("b").as_string(), "x");
  ASSERT_TRUE(value.at("c").is_array());
  EXPECT_EQ(value.at("c").items().size(), 2u);
  EXPECT_TRUE(value.at("d").at("e").as_bool());
  EXPECT_EQ(value.find("missing"), nullptr);
  EXPECT_THROW((void)value.at("missing"), CsbError);
}

TEST(JsonTest, DumpParseDumpIsByteStable) {
  // Shortest-round-trip doubles: serialize -> parse -> serialize must be
  // identical bytes (the property the trace golden file relies on).
  JsonValue obj;
  obj.set("pi", JsonValue(3.141592653589793));
  obj.set("tiny", JsonValue(1e-300));
  obj.set("neg", JsonValue(-0.1));
  obj.set("text", JsonValue(std::string("quote \" slash \\ nl \n")));
  const std::string once = obj.dump();
  EXPECT_EQ(parse_json(once).dump(), once);
}

TEST(JsonTest, MalformedInputThrows) {
  EXPECT_THROW(parse_json("{"), CsbError);
  EXPECT_THROW(parse_json("{\"a\": }"), CsbError);
  EXPECT_THROW(parse_json("nope"), CsbError);
}

// ----------------------------------------------------------- trace lines

// Fixed records whose rendering the golden file pins down.
std::vector<std::string> golden_lines() {
  SpanRecord stage;
  stage.id = 2;
  stage.parent = 1;
  stage.name = "distinct:shuffle";
  stage.kind = "stage";
  stage.t0 = 0.001;
  stage.t1 = 0.015625;
  stage.seconds = 0.25;
  stage.tasks = 4;
  stage.task_seconds = 0.9;
  stage.node_busy = {0.5, 0.4};
  stage.task_hist = {0, 2, 2};

  SpanRecord phase;
  phase.id = 1;
  phase.parent = 0;
  phase.name = "expand";
  phase.kind = "phase";
  phase.t0 = 0.0005;
  phase.t1 = 0.125;
  phase.seconds = 0.1245;

  BenchRecord bench;
  bench.name = "BM_DistinctDedup";
  bench.fields.emplace_back("iterations", JsonValue(std::uint64_t{1000}));
  bench.fields.emplace_back("real_s_per_iter", JsonValue(0.0031537809660003406));
  bench.fields.emplace_back("label", JsonValue(std::string("re\"lease")));

  return {
      trace_lines::meta({{"tool", "obs_test"}, {"algo", "pgsk"}}),
      trace_lines::span(stage),
      trace_lines::span(phase),
      trace_lines::counter({"gen.edges_materialized", 20766}),
      trace_lines::mem({"end", 1.5, 104857600, 209715200}),
      trace_lines::bench(bench),
  };
}

std::string golden_path() {
  return std::string(CSB_TEST_DATA_DIR) + "/trace_golden.ndjson";
}

TEST(TraceLinesTest, GoldenFilePinsSerialization) {
  std::string rendered;
  for (const std::string& line : golden_lines()) {
    rendered += line;
    rendered += '\n';
  }
  if (std::getenv("CSB_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary | std::ios::trunc);
    out << rendered;
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.is_open()) << golden_path();
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << "csb.trace.v1 serialization changed; if intentional, regenerate "
         "with CSB_REGEN_GOLDEN=1 and bump consumers";
}

TEST(TraceLinesTest, ParseRoundTripsEveryRecordType) {
  std::string rendered;
  for (const std::string& line : golden_lines()) {
    rendered += line;
    rendered += '\n';
  }
  std::istringstream in(rendered);
  std::vector<std::string> errors;
  const ParsedTrace trace = parse_trace_ndjson(in, &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(trace.records, 6u);
  EXPECT_EQ(trace.meta_value("tool"), "obs_test");
  EXPECT_EQ(trace.meta_value("algo"), "pgsk");
  EXPECT_EQ(trace.meta_value("absent", "fallback"), "fallback");

  ASSERT_EQ(trace.spans.size(), 2u);
  const SpanRecord& stage = trace.spans[0];
  EXPECT_EQ(stage.id, 2u);
  EXPECT_EQ(stage.parent, 1u);
  EXPECT_EQ(stage.name, "distinct:shuffle");
  EXPECT_EQ(stage.kind, "stage");
  EXPECT_DOUBLE_EQ(stage.seconds, 0.25);
  EXPECT_EQ(stage.tasks, 4u);
  EXPECT_DOUBLE_EQ(stage.task_seconds, 0.9);
  ASSERT_EQ(stage.node_busy.size(), 2u);
  EXPECT_DOUBLE_EQ(stage.node_busy[1], 0.4);
  EXPECT_EQ(stage.task_hist, (std::vector<std::uint64_t>{0, 2, 2}));

  ASSERT_EQ(trace.counters.size(), 1u);
  EXPECT_EQ(trace.counters[0].name, "gen.edges_materialized");
  EXPECT_EQ(trace.counters[0].value, 20766u);

  ASSERT_EQ(trace.mems.size(), 1u);
  EXPECT_EQ(trace.mems[0].label, "end");
  EXPECT_EQ(trace.mems[0].rss_bytes, 104857600u);
  EXPECT_EQ(trace.mems[0].hwm_bytes, 209715200u);

  ASSERT_EQ(trace.benches.size(), 1u);
  EXPECT_EQ(trace.benches[0].name, "BM_DistinctDedup");
  ASSERT_EQ(trace.benches[0].fields.size(), 3u);
  EXPECT_EQ(trace.benches[0].fields[2].second.as_string(), "re\"lease");

  // Re-rendering the parsed records reproduces the input byte-for-byte.
  std::string again = trace_lines::meta(trace.meta) + '\n';
  again += trace_lines::span(trace.spans[0]) + '\n';
  again += trace_lines::span(trace.spans[1]) + '\n';
  again += trace_lines::counter(trace.counters[0]) + '\n';
  again += trace_lines::mem(trace.mems[0]) + '\n';
  again += trace_lines::bench(trace.benches[0]) + '\n';
  EXPECT_EQ(again, rendered);
}

TEST(TraceParseTest, CollectsSchemaViolations) {
  const std::string input =
      "{\"v\":\"csb.trace.v0\",\"type\":\"meta\",\"attrs\":{}}\n"
      "{\"v\":\"csb.trace.v1\",\"type\":\"wat\"}\n"
      "not json at all\n"
      "{\"v\":\"csb.trace.v1\",\"type\":\"counter\",\"name\":\"x\"}\n";
  std::istringstream in(input);
  std::vector<std::string> errors;
  const ParsedTrace trace = parse_trace_ndjson(in, &errors);
  EXPECT_GE(errors.size(), 4u);
  // The bad-version and malformed lines don't count as records; the lines
  // that carried a valid version tag do (their problems are reported).
  EXPECT_EQ(trace.records, 2u);
  EXPECT_TRUE(trace.counters.empty());

  // Without an error sink the first violation throws.
  std::istringstream strict(input);
  EXPECT_THROW(parse_trace_ndjson(strict), CsbError);
}

TEST(TraceParseTest, FlagsNonMonotoneSpansAndDanglingParents) {
  SpanRecord a;
  a.id = 1;
  a.name = "a";
  a.kind = "serial";
  a.t0 = 0.0;
  a.t1 = 2.0;
  SpanRecord b;
  b.id = 2;
  b.parent = 99;  // no such span
  b.name = "b";
  b.kind = "serial";
  b.t0 = 0.0;
  b.t1 = 1.0;  // completes before a -> non-monotone file order
  std::istringstream in(trace_lines::meta({{"tool", "obs_test"}}) + '\n' +
                        trace_lines::span(a) + '\n' + trace_lines::span(b) +
                        '\n');
  std::vector<std::string> errors;
  parse_trace_ndjson(in, &errors);
  EXPECT_EQ(errors.size(), 2u);
}

// -------------------------------------------------------------- recorder

TEST(TraceRecorderTest, SpansReconcileWithJobMetrics) {
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  TraceRecorder recorder;
  recorder.set_meta("tool", "obs_test");
  cluster.set_trace(&recorder);

  {
    PhaseScope phase(&recorder, "grow");
    for (int round = 0; round < 2; ++round) {
      std::vector<std::function<void()>> tasks;
      for (int t = 0; t < 8; ++t) {
        tasks.emplace_back([] {
          volatile double x = 0;
          for (int i = 0; i < 20000; ++i) x = x + i;
        });
      }
      cluster.run_stage("work", std::move(tasks));
    }
    cluster.run_serial("fit", [] {
      volatile double x = 0;
      for (int i = 0; i < 50000; ++i) x = x + i;
    });
  }
  cluster.set_trace(nullptr);

  const JobMetrics& metrics = cluster.metrics();
  double stage_s = 0.0;
  double serial_s = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t phase_id = 0;
  for (const SpanRecord& span : recorder.spans()) {
    if (span.kind == "phase") phase_id = span.id;
  }
  ASSERT_NE(phase_id, 0u);
  for (const SpanRecord& span : recorder.spans()) {
    if (span.kind == "stage") {
      stage_s += span.seconds;
      tasks += span.tasks;
      EXPECT_EQ(span.parent, phase_id) << span.name;
      // Virtual placement: one busy entry per node, none exceeding the
      // booked makespan, all work accounted for.
      ASSERT_EQ(span.node_busy.size(), 2u);
      double busy = 0.0;
      for (const double node : span.node_busy) {
        EXPECT_LE(node, 2 * span.seconds * (1 + 1e-9));  // 2 cores/node
        busy += node;
      }
      EXPECT_NEAR(busy, span.task_seconds, 1e-9 * (1.0 + busy));
      std::uint64_t hist_total = 0;
      for (const std::uint64_t bucket : span.task_hist) hist_total += bucket;
      EXPECT_EQ(hist_total, span.tasks);
    } else if (span.kind == "serial") {
      serial_s += span.seconds;
      EXPECT_EQ(span.parent, phase_id);
      EXPECT_EQ(span.name, "fit");
    }
  }
  // The booked span seconds tile the simulated time exactly (phases are
  // wall-clock envelopes and excluded from the sum).
  EXPECT_NEAR(stage_s + serial_s, metrics.simulated_seconds,
              1e-9 * (1.0 + metrics.simulated_seconds));
  EXPECT_NEAR(serial_s, metrics.serial_seconds, 1e-12);
  EXPECT_EQ(tasks, metrics.tasks);

  // Spans serialize in completion order: t1 monotone non-decreasing.
  std::ostringstream out;
  recorder.write_ndjson(out);
  std::istringstream in(out.str());
  std::vector<std::string> errors;
  const ParsedTrace parsed = parse_trace_ndjson(in, &errors);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(parsed.spans.size(), recorder.spans().size());
}

TEST(TraceRecorderTest, NestedPhasesParentInnermost) {
  TraceRecorder recorder;
  const std::uint64_t outer = recorder.begin_phase("outer");
  const std::uint64_t inner = recorder.begin_phase("inner");
  EXPECT_EQ(recorder.open_parent(), inner);
  SpanRecord leaf;
  leaf.name = "leaf";
  leaf.kind = "serial";
  recorder.record_span(std::move(leaf));
  recorder.end_phase(inner);
  recorder.end_phase(outer);
  EXPECT_EQ(recorder.open_parent(), 0u);

  ASSERT_EQ(recorder.spans().size(), 3u);
  const SpanRecord& leaf_span = recorder.spans()[0];
  const SpanRecord& inner_span = recorder.spans()[1];
  const SpanRecord& outer_span = recorder.spans()[2];
  EXPECT_EQ(leaf_span.parent, inner);
  EXPECT_EQ(inner_span.parent, outer);
  EXPECT_EQ(outer_span.parent, 0u);
  EXPECT_LE(outer_span.t0, inner_span.t0);
  EXPECT_GE(outer_span.t1, inner_span.t1);
}

TEST(TraceRecorderTest, NullRecorderIsANoOp) {
  // The disabled path every instrumentation site takes: a null recorder
  // pointer must be safe to scope and cost nothing.
  { PhaseScope scope(nullptr, "ignored"); }
  EXPECT_EQ(TraceRecorder::current(), nullptr);
  TraceRecorder recorder;
  TraceRecorder::set_current(&recorder);
  EXPECT_EQ(TraceRecorder::current(), &recorder);
  TraceRecorder::set_current(nullptr);
  EXPECT_EQ(TraceRecorder::current(), nullptr);
}

// ------------------------------------------------------ metrics + memory

TEST(MetricsRegistryTest, CountersGaugesAndSnapshot) {
  MetricsRegistry& registry = MetricsRegistry::instance();
  registry.reset_all();
  Counter& hits = registry.counter("obs_test.hits");
  EXPECT_EQ(&hits, &registry.counter("obs_test.hits"));  // stable reference
  hits.add(3);
  hits.increment();
  EXPECT_EQ(hits.value(), 4u);

  Gauge& peak = registry.gauge("obs_test.peak");
  peak.record_max(10);
  peak.record_max(7);  // watermark: lower samples do not regress it
  EXPECT_EQ(peak.value(), 10u);

  bool saw_counter = false;
  bool saw_gauge = false;
  for (const MetricSample& sample : registry.snapshot()) {
    if (sample.name == "obs_test.hits") {
      saw_counter = true;
      EXPECT_EQ(sample.value, 4u);
    }
    if (sample.name == "obs_test.peak") saw_gauge = true;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);

  registry.reset_all();
  EXPECT_EQ(hits.value(), 0u);
  EXPECT_EQ(peak.value(), 0u);
}

TEST(MemWatchTest, SamplesProcessRss) {
  const MemorySample sample = sample_process_memory();
  EXPECT_GT(sample.rss_bytes, 0u);
  EXPECT_GE(sample.hwm_bytes, sample.rss_bytes);
}

TEST(DurationHistogramTest, BucketsAreLog2Microseconds) {
  // [2^i, 2^(i+1)) microseconds; sub-microsecond tasks land in bucket 0.
  const std::vector<std::uint64_t> hist = duration_histogram_log2us(
      {0.0, 0.5e-6, 1.5e-6, 3e-6, 5e-6, 1000e-6});
  // 0us, 0.5us, 1.5us -> bucket 0; 3us -> bucket 1; 5us -> bucket 2;
  // 1000us -> bucket 9.
  ASSERT_EQ(hist.size(), 10u);
  EXPECT_EQ(hist[0], 3u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[9], 1u);
}

// ---------------------------------------------------- generator registry

SeedBundle registry_seed() {
  TrafficModelConfig config;
  config.benign_sessions = 300;
  config.client_hosts = 60;
  config.server_hosts = 15;
  return build_seed_from_netflow(
      sessions_to_netflow(TrafficModel(config).generate_benign()));
}

TEST(GeneratorRegistryTest, BuiltinsAreRegistered) {
  for (const char* name :
       {"pgpba", "pgsk", "rmat", "classic-ba", "erdos-renyi", "chung-lu",
        "sbm"}) {
    const Generator* generator = find_generator(name);
    ASSERT_NE(generator, nullptr) << name;
    EXPECT_EQ(generator->name(), name);
    EXPECT_FALSE(generator->description().empty());
  }
  EXPECT_EQ(find_generator("no-such-algo"), nullptr);
  EXPECT_GE(all_generators().size(), 7u);
  try {
    (void)require_generator("no-such-algo");
    FAIL() << "require_generator should throw";
  } catch (const CsbError& error) {
    // The error names the registered generators so the CLI message is
    // actionable.
    EXPECT_NE(std::string(error.what()).find("pgpba"), std::string::npos);
  }
}

TEST(GeneratorRegistryTest, ConfigGettersParseStrictly) {
  GenConfig config;
  config.extra = {{"fraction", "0.5"}, {"scale", "12"}, {"bad", "12x"},
                  {"flag", "true"}, {"off", "false"}};
  EXPECT_DOUBLE_EQ(config.get_double("fraction", 1.0), 0.5);
  EXPECT_EQ(config.get_u64("scale", 1), 12u);
  EXPECT_EQ(config.get_u64("absent", 7), 7u);
  EXPECT_TRUE(config.get_flag("flag"));
  EXPECT_FALSE(config.get_flag("off"));
  EXPECT_FALSE(config.get_flag("absent"));
  EXPECT_THROW((void)config.get_u64("bad", 0), CsbError);
  EXPECT_THROW((void)config.get_double("bad", 0.0), CsbError);
}

TEST(GeneratorRegistryTest, FixedSeedRunsAreDeterministic) {
  const SeedBundle seed = registry_seed();
  for (const char* name : {"pgpba", "pgsk", "rmat", "erdos-renyi"}) {
    const Generator& generator = require_generator(name);
    GenConfig config;
    config.desired_edges = 3 * seed.graph.num_edges();
    config.partitions = 4;
    config.seed = 42;
    config.with_properties = false;
    ClusterSim c1(ClusterConfig{.nodes = 2, .cores_per_node = 2});
    ClusterSim c2(ClusterConfig{.nodes = 2, .cores_per_node = 2});
    const GenResult a = generator.generate(seed.graph, seed.profile, c1, config);
    const GenResult b = generator.generate(seed.graph, seed.profile, c2, config);
    EXPECT_EQ(a.graph, b.graph) << name;
    EXPECT_GT(a.graph.num_edges(), 0u) << name;
  }
}

TEST(GeneratorRegistryTest, TracedRunEmitsGeneratorPhases) {
  const SeedBundle seed = registry_seed();
  const Generator& generator = require_generator("pgsk");
  GenConfig config;
  config.desired_edges = 2 * seed.graph.num_edges();
  config.partitions = 4;
  config.seed = 7;
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  TraceRecorder recorder;
  cluster.set_trace(&recorder);
  const GenResult result =
      generator.generate(seed.graph, seed.profile, cluster, config);
  cluster.set_trace(nullptr);
  EXPECT_GT(result.graph.num_edges(), 0u);

  std::vector<std::string> phases;
  double booked = 0.0;
  for (const SpanRecord& span : recorder.spans()) {
    if (span.kind == "phase") phases.push_back(span.name);
    if (span.kind == "stage" || span.kind == "serial") booked += span.seconds;
  }
  // The exact PGSK streams expand/re-multiply through the store sink, so
  // the classic expand/re-multiply/materialize phases are replaced by the
  // "store" phase (docs/graph-store.md).
  for (const char* expected : {"collapse", "kronfit", "store", "properties"}) {
    EXPECT_NE(std::find(phases.begin(), phases.end(), expected), phases.end())
        << expected;
  }
  EXPECT_EQ(std::find(phases.begin(), phases.end(), "materialize"),
            phases.end());
  EXPECT_NEAR(booked, result.metrics.simulated_seconds,
              1e-9 * (1.0 + result.metrics.simulated_seconds));
}

}  // namespace
}  // namespace csb
