// Unit tests for src/pcap: checksums, frame encode/decode round trips, and
// the capture-file reader/writer (including foreign byte order).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "pcap/packet.hpp"
#include "pcap/pcap_file.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace csb {
namespace {

FrameSpec spec_with_payload(std::uint16_t payload) {
  return FrameSpec{
      .src_ip = 0x0a000001,  // 10.0.0.1
      .dst_ip = 0x0a000002,
      .src_port = 49152,
      .dst_port = 80,
      .ttl = 64,
      .payload_len = payload,
  };
}

// --------------------------------------------------------------- checksum

TEST(ChecksumTest, Rfc1071ReferenceVector) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data, sizeof data), 0x220d);
}

TEST(ChecksumTest, OddLengthHandled) {
  const std::uint8_t data[] = {0xff, 0x00, 0xab};
  // Manual: 0xff00 + 0xab00 = 0x1aa00 -> fold 0xaa01 -> ~ = 0x55fe.
  EXPECT_EQ(internet_checksum(data, sizeof data), 0x55fe);
}

TEST(ChecksumTest, VerifiesToZeroWhenEmbedded) {
  // IPv4 header of any built frame must verify: sum over the header with
  // the checksum field included is 0 (i.e. checksum(header) == 0).
  const auto frame = build_tcp_frame(spec_with_payload(0), kTcpSyn);
  EXPECT_EQ(internet_checksum(frame.data() + kEthernetHeaderLen,
                              kIpv4MinHeaderLen),
            0);
}

// --------------------------------------------------- frame encode/decode

class TcpFrameTest : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(TcpFrameTest, EncodeDecodeRoundTrip) {
  const std::uint16_t payload = GetParam();
  const FrameSpec spec = spec_with_payload(payload);
  const auto frame =
      build_tcp_frame(spec, static_cast<std::uint8_t>(kTcpSyn | kTcpAck));
  const auto decoded = decode_frame(frame.data(), frame.size(),
                                    static_cast<std::uint32_t>(frame.size()),
                                    123456789);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src_ip, spec.src_ip);
  EXPECT_EQ(decoded->dst_ip, spec.dst_ip);
  EXPECT_EQ(decoded->protocol, 6);
  EXPECT_EQ(decoded->src_port, spec.src_port);
  EXPECT_EQ(decoded->dst_port, spec.dst_port);
  EXPECT_EQ(decoded->tcp_flags, kTcpSyn | kTcpAck);
  EXPECT_EQ(decoded->payload_bytes, payload);
  EXPECT_EQ(decoded->wire_bytes, frame.size());
  EXPECT_EQ(decoded->timestamp_us, 123456789u);
}

INSTANTIATE_TEST_SUITE_P(Payloads, TcpFrameTest,
                         ::testing::Values(0, 1, 10, 100, 1000, 1460));

class UdpFrameTest : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(UdpFrameTest, EncodeDecodeRoundTrip) {
  const FrameSpec spec = spec_with_payload(GetParam());
  const auto frame = build_udp_frame(spec);
  const auto decoded = decode_frame(frame.data(), frame.size(),
                                    static_cast<std::uint32_t>(frame.size()),
                                    0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->protocol, 17);
  EXPECT_EQ(decoded->payload_bytes, GetParam());
  EXPECT_EQ(frame.size(),
            kEthernetHeaderLen + kIpv4MinHeaderLen + 8u + GetParam());
}

INSTANTIATE_TEST_SUITE_P(Payloads, UdpFrameTest,
                         ::testing::Values(0, 64, 512, 1460));

TEST(IcmpFrameTest, EncodeDecodeRoundTrip) {
  const FrameSpec spec = spec_with_payload(56);
  const auto frame = build_icmp_frame(spec, /*request=*/true);
  const auto decoded = decode_frame(frame.data(), frame.size(),
                                    static_cast<std::uint32_t>(frame.size()),
                                    0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->protocol, 1);
  EXPECT_EQ(decoded->src_port, 0);
  EXPECT_EQ(decoded->payload_bytes, 56u);
}

TEST(DecodeTest, RejectsNonIpv4Ethertype) {
  auto frame = build_udp_frame(spec_with_payload(10));
  frame[12] = 0x86;  // 0x86dd = IPv6
  frame[13] = 0xdd;
  EXPECT_FALSE(decode_frame(frame.data(), frame.size(), 0, 0).has_value());
}

TEST(DecodeTest, RejectsUnsupportedProtocol) {
  auto frame = build_udp_frame(spec_with_payload(10));
  frame[kEthernetHeaderLen + 9] = 47;  // GRE
  EXPECT_FALSE(decode_frame(frame.data(), frame.size(), 0, 0).has_value());
}

TEST(DecodeTest, RejectsRunts) {
  const std::uint8_t tiny[10] = {};
  EXPECT_FALSE(decode_frame(tiny, sizeof tiny, 0, 0).has_value());
}

TEST(DecodeTest, SnapTruncationUsesOrigLen) {
  // Simulate a snaplen-truncated capture: only the first 60 bytes of a
  // large frame were stored, but orig_len records the wire size.
  const auto frame = build_tcp_frame(spec_with_payload(1400), kTcpAck);
  const auto decoded = decode_frame(frame.data(), 60,
                                    static_cast<std::uint32_t>(frame.size()),
                                    0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->wire_bytes, frame.size());
  EXPECT_EQ(decoded->payload_bytes, 1400u);  // from the IPv4 total length
}

// ----------------------------------------------------------- file format

TEST(PcapFileTest, WriteReadRoundTrip) {
  std::vector<PcapPacket> packets;
  for (int i = 0; i < 5; ++i) {
    PcapPacket packet;
    packet.timestamp_us = 1'000'000ull * i + 250'000;
    packet.data = build_udp_frame(spec_with_payload(100 + i));
    packet.orig_len = static_cast<std::uint32_t>(packet.data.size());
    packets.push_back(packet);
  }
  std::stringstream buffer;
  {
    PcapWriter writer(buffer);
    for (const auto& packet : packets) writer.write(packet);
    EXPECT_EQ(writer.packets_written(), 5u);
  }
  PcapReader reader(buffer);
  EXPECT_EQ(reader.linktype(), kLinktypeEthernet);
  PcapPacket read_back;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(reader.next(read_back));
    EXPECT_EQ(read_back.timestamp_us, packets[i].timestamp_us);
    EXPECT_EQ(read_back.data, packets[i].data);
    EXPECT_EQ(read_back.orig_len, packets[i].orig_len);
  }
  EXPECT_FALSE(reader.next(read_back));
}

TEST(PcapFileTest, SnaplenTruncatesOnWrite) {
  std::stringstream buffer;
  PcapWriter writer(buffer, /*snaplen=*/64);
  PcapPacket packet;
  packet.data = build_tcp_frame(spec_with_payload(1000), kTcpAck);
  packet.orig_len = static_cast<std::uint32_t>(packet.data.size());
  writer.write(packet);
  PcapReader reader(buffer);
  PcapPacket read_back;
  ASSERT_TRUE(reader.next(read_back));
  EXPECT_EQ(read_back.data.size(), 64u);
  EXPECT_EQ(read_back.orig_len, packet.orig_len);
}

TEST(PcapFileTest, ReadsSwappedByteOrder) {
  // Hand-build a big-endian (swapped relative to x86) capture with one
  // 4-byte record.
  const auto be32 = [](std::uint32_t v) {
    return std::string{static_cast<char>(v >> 24),
                       static_cast<char>((v >> 16) & 0xff),
                       static_cast<char>((v >> 8) & 0xff),
                       static_cast<char>(v & 0xff)};
  };
  const auto be16 = [](std::uint16_t v) {
    return std::string{static_cast<char>(v >> 8),
                       static_cast<char>(v & 0xff)};
  };
  std::string file;
  file += be32(0xa1b2c3d4);  // magic written big-endian => swapped on read
  file += be16(2) + be16(4);
  file += be32(0) + be32(0) + be32(65535) + be32(1);
  file += be32(10) + be32(500000) + be32(4) + be32(4);  // record header
  file += std::string("\x01\x02\x03\x04", 4);
  std::stringstream buffer(file);
  PcapReader reader(buffer);
  EXPECT_EQ(reader.snaplen(), 65535u);
  EXPECT_EQ(reader.linktype(), 1u);
  PcapPacket packet;
  ASSERT_TRUE(reader.next(packet));
  EXPECT_EQ(packet.timestamp_us, 10'500'000u);
  EXPECT_EQ(packet.data.size(), 4u);
  EXPECT_EQ(packet.orig_len, 4u);
}

TEST(PcapFileTest, NanosecondMagicConverted) {
  std::stringstream buffer;
  const std::uint32_t magic = 0xa1b23c4d;
  const std::uint16_t v2 = 2;
  const std::uint16_t v4 = 4;
  const std::uint32_t zero = 0;
  const std::uint32_t snap = 65535;
  const std::uint32_t link = 1;
  buffer.write(reinterpret_cast<const char*>(&magic), 4);
  buffer.write(reinterpret_cast<const char*>(&v2), 2);
  buffer.write(reinterpret_cast<const char*>(&v4), 2);
  buffer.write(reinterpret_cast<const char*>(&zero), 4);
  buffer.write(reinterpret_cast<const char*>(&zero), 4);
  buffer.write(reinterpret_cast<const char*>(&snap), 4);
  buffer.write(reinterpret_cast<const char*>(&link), 4);
  const std::uint32_t ts_sec = 1;
  const std::uint32_t ts_nsec = 750'000'000;  // 750 ms
  const std::uint32_t len = 0;
  buffer.write(reinterpret_cast<const char*>(&ts_sec), 4);
  buffer.write(reinterpret_cast<const char*>(&ts_nsec), 4);
  buffer.write(reinterpret_cast<const char*>(&len), 4);
  buffer.write(reinterpret_cast<const char*>(&len), 4);
  PcapReader reader(buffer);
  PcapPacket packet;
  ASSERT_TRUE(reader.next(packet));
  EXPECT_EQ(packet.timestamp_us, 1'750'000u);
}

TEST(PcapFileTest, RejectsBadMagic) {
  std::stringstream buffer(std::string(24, 'x'));
  EXPECT_THROW(PcapReader reader(buffer), CsbError);
}

TEST(PcapFileTest, RejectsTruncatedRecord) {
  std::stringstream buffer;
  PcapWriter writer(buffer);
  PcapPacket packet;
  packet.data = build_udp_frame(spec_with_payload(10));
  packet.orig_len = static_cast<std::uint32_t>(packet.data.size());
  writer.write(packet);
  std::string content = buffer.str();
  content.resize(content.size() - 5);
  std::stringstream truncated(content);
  PcapReader reader(truncated);
  PcapPacket read_back;
  EXPECT_THROW(reader.next(read_back), CsbError);
}

TEST(PcapFileTest, IndexedReaderMatchesStreamingReader) {
  std::vector<PcapPacket> packets;
  for (int i = 0; i < 60; ++i) {
    PcapPacket packet;
    packet.timestamp_us = 1'000ull * static_cast<std::uint64_t>(i);
    FrameSpec spec = spec_with_payload(static_cast<std::uint16_t>(20 + i));
    spec.src_port = static_cast<std::uint16_t>(40000 + i);
    packet.data = i % 3 == 0   ? build_tcp_frame(spec, kTcpSyn)
                  : i % 3 == 1 ? build_udp_frame(spec)
                               : build_icmp_frame(spec, true);
    packet.orig_len = static_cast<std::uint32_t>(packet.data.size());
    packets.push_back(packet);
  }
  const std::string path = ::testing::TempDir() + "/csb_pcap_index_test.pcap";
  write_pcap_file(path, packets);

  const IndexedPcap capture = index_pcap_file(path);
  ASSERT_EQ(capture.records.size(), packets.size());
  const auto serial = read_pcap_file(path);
  ThreadPool pool(4);
  const auto pooled = read_pcap_file(path, &pool);
  ASSERT_EQ(serial.size(), packets.size());
  EXPECT_EQ(serial, pooled);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(capture.packet(i), packets[i]) << "record " << i;
    EXPECT_EQ(capture.records[i].timestamp_us, packets[i].timestamp_us);
  }
}

TEST(PcapFileTest, FileRoundTrip) {
  std::vector<PcapPacket> packets(3);
  for (int i = 0; i < 3; ++i) {
    packets[i].timestamp_us = i;
    packets[i].data = build_icmp_frame(spec_with_payload(8), true);
    packets[i].orig_len = static_cast<std::uint32_t>(packets[i].data.size());
  }
  const std::string path = ::testing::TempDir() + "/csb_pcap_test.pcap";
  write_pcap_file(path, packets);
  const auto loaded = read_pcap_file(path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[2].data, packets[2].data);
}

}  // namespace
}  // namespace csb
