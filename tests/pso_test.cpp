// Unit tests for src/ids PSO threshold training: the generic optimizer on
// known functions, the loss definition, and end-to-end training that beats
// untrained defaults on labeled traffic.
#include <gtest/gtest.h>

#include <cmath>

#include "ids/calibrate.hpp"
#include "ids/pso.hpp"
#include "trace/attacks.hpp"
#include "trace/session.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"

namespace csb {
namespace {

// -------------------------------------------------------------- generic pso

TEST(PsoTest, MinimizesSphereFunction) {
  const std::vector<double> lower = {-10, -10, -10};
  const std::vector<double> upper = {10, 10, 10};
  const auto sphere = [](std::span<const double> x) {
    double sum = 0.0;
    for (const double v : x) sum += (v - 2.0) * (v - 2.0);
    return sum;
  };
  PsoOptions options;
  options.particles = 30;
  options.iterations = 120;
  const PsoResult result = pso_minimize(sphere, lower, upper, options);
  EXPECT_LT(result.value, 1e-3);
  for (const double v : result.position) EXPECT_NEAR(v, 2.0, 0.1);
  EXPECT_EQ(result.evaluations, 30u + 30u * 120u);
}

TEST(PsoTest, RespectsBoxConstraints) {
  // Optimum outside the box: the result must sit on the boundary.
  const std::vector<double> lower = {0.0};
  const std::vector<double> upper = {1.0};
  const auto objective = [](std::span<const double> x) {
    return (x[0] - 5.0) * (x[0] - 5.0);
  };
  const PsoResult result = pso_minimize(objective, lower, upper);
  EXPECT_NEAR(result.position[0], 1.0, 1e-6);
}

TEST(PsoTest, DeterministicPerSeed) {
  const std::vector<double> lower = {-5, -5};
  const std::vector<double> upper = {5, 5};
  const auto rosenbrock = [](std::span<const double> x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  PsoOptions options;
  options.seed = 42;
  const auto a = pso_minimize(rosenbrock, lower, upper, options);
  const auto b = pso_minimize(rosenbrock, lower, upper, options);
  EXPECT_EQ(a.position, b.position);
  EXPECT_EQ(a.value, b.value);
}

TEST(PsoTest, RejectsBadArguments) {
  const auto objective = [](std::span<const double>) { return 0.0; };
  EXPECT_THROW(pso_minimize(objective, {}, {}), CsbError);
  const std::vector<double> lower = {1.0};
  const std::vector<double> upper = {0.0};  // inverted
  EXPECT_THROW(pso_minimize(objective, lower, upper), CsbError);
}

// --------------------------------------------------------------- loss

TEST(DetectionLossTest, ScoresMissesAndFalseAlarms) {
  DetectionGroundTruth truth;
  truth.expected.push_back({7, {AttackClass::kSynFlood}});
  truth.participants = {7};

  // Missed attack: loss 10.
  EXPECT_DOUBLE_EQ(detection_loss({}, truth), 10.0);
  // Correct detection: loss 0.
  const Alarm hit{7, AttackClass::kSynFlood, true, Protocol::kTcp};
  EXPECT_DOUBLE_EQ(detection_loss({hit}, truth), 0.0);
  // Wrong type at the right ip: still missed (10).
  const Alarm wrong_type{7, AttackClass::kHostScan, true, Protocol::kTcp};
  EXPECT_DOUBLE_EQ(detection_loss({wrong_type}, truth), 10.0);
  // One false alarm on a benign host: +1.
  const Alarm fp{99, AttackClass::kFlooding, true, Protocol::kUdp};
  EXPECT_DOUBLE_EQ(detection_loss({hit, fp}, truth), 1.0);
}

// ------------------------------------------------------------ end to end

TEST(TrainThresholdsTest, BeatsDefaultsOnLabeledTraffic) {
  // Labeled training traffic: heavy benign load (the untrained defaults
  // raise volumetric false alarms on the busiest benign servers) plus one
  // SYN flood at a quiet host. PSO must keep the detection and tune the
  // volumetric thresholds to this network, eliminating the false alarms.
  TrafficModelConfig config;
  config.benign_sessions = 8'000;
  const TrafficModel model(config);
  auto records = sessions_to_netflow(model.generate_benign());

  Rng rng(3);
  SynFloodConfig syn;
  syn.victim_ip = 0x0a0000f0;  // quiet internal host
  syn.flows = 3'000;
  syn.spoofed_sources = 500;
  syn.start_us = config.start_time_us;
  std::unordered_set<std::uint32_t> participants{syn.victim_ip};
  for (const auto& s : inject_syn_flood(syn, rng)) {
    records.push_back(to_netflow(s));
    participants.insert(s.client_ip);
  }

  // A benign nightly-backup host: 200 fat transfers to one storage server.
  // Its raw volume trips the untrained volumetric thresholds — the classic
  // false-positive source the paper's "training must be used" remark is
  // about.
  for (int i = 0; i < 200; ++i) {
    SessionSpec backup;
    backup.client_ip = 0x0a0000e0;
    backup.server_ip = model.server_ip(30);
    backup.protocol = Protocol::kTcp;
    backup.client_port = static_cast<std::uint16_t>(40000 + i);
    backup.server_port = 873;  // rsync
    backup.start_us = config.start_time_us + i * 1'000'000ull;
    backup.duration_ms = 30'000;
    backup.out_bytes = 200'000;
    backup.in_bytes = 2'000'000;
    backup.state = ConnState::kSF;
    normalize_session(backup);
    records.push_back(to_netflow(backup));
  }

  DetectionGroundTruth truth;
  truth.expected.push_back(
      {syn.victim_ip, {AttackClass::kSynFlood, AttackClass::kDdos}});
  truth.participants = std::move(participants);

  const double default_loss =
      detection_loss(AnomalyDetector().detect(records), truth);
  ASSERT_GT(default_loss, 0.0)
      << "scenario must defeat the untrained defaults";

  PsoOptions options;
  options.particles = 30;
  options.iterations = 40;
  const DetectionThresholds trained =
      train_thresholds_pso(records, truth, options);
  const double trained_loss =
      detection_loss(AnomalyDetector(trained).detect(records), truth);
  EXPECT_LT(trained_loss, default_loss);
  EXPECT_DOUBLE_EQ(trained_loss, 0.0);  // detects the flood with zero FPs
}

TEST(TrainThresholdsTest, RejectsEmptyInput) {
  DetectionGroundTruth truth;
  EXPECT_THROW(train_thresholds_pso({}, truth), CsbError);
  NetflowRecord r;
  EXPECT_THROW(train_thresholds_pso({r}, truth), CsbError);
}

}  // namespace
}  // namespace csb
