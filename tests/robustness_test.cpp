// Robustness tests: every parser in the library must reject arbitrary
// garbage with CsbError (or a clean nullopt/false), never crash or read out
// of bounds. Deterministic pseudo-fuzz with bounded iterations.
#include <gtest/gtest.h>

#include <sstream>

#include "flow/netflow_io.hpp"
#include "graph/graph_io.hpp"
#include "pcap/packet.hpp"
#include "pcap/pcap_file.hpp"
#include "seed/seed.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace csb {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> bytes(rng.uniform(max_len + 1));
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(256));
  return bytes;
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, DecodeFrameNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, 256);
    // Any result is fine; the contract is "no crash, no UB".
    const auto decoded =
        decode_frame(bytes.data(), bytes.size(),
                     static_cast<std::uint32_t>(rng.uniform(65536)),
                     rng.uniform(1ULL << 40));
    if (decoded) {
      EXPECT_TRUE(decoded->protocol == 1 || decoded->protocol == 6 ||
                  decoded->protocol == 17);
    }
  }
}

TEST_P(FuzzSeedTest, DecodeMutatedValidFramesNeverCrashes) {
  Rng rng(GetParam() ^ 0xff);
  FrameSpec spec;
  spec.src_ip = 1;
  spec.dst_ip = 2;
  spec.src_port = 1000;
  spec.dst_port = 80;
  spec.payload_len = 100;
  for (int i = 0; i < 2000; ++i) {
    auto frame = build_tcp_frame(spec, kTcpAck);
    // Flip a handful of random bytes.
    for (int flips = 0; flips < 5; ++flips) {
      frame[rng.uniform(frame.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    const std::size_t truncate_to = rng.uniform(frame.size() + 1);
    (void)decode_frame(frame.data(), truncate_to,
                       static_cast<std::uint32_t>(frame.size()), 0);
  }
}

TEST_P(FuzzSeedTest, PcapReaderRejectsGarbage) {
  Rng rng(GetParam() ^ 0xabc);
  for (int i = 0; i < 300; ++i) {
    const auto bytes = random_bytes(rng, 512);
    std::stringstream stream(
        std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    try {
      PcapReader reader(stream);
      PcapPacket packet;
      for (int records = 0; records < 10 && reader.next(packet); ++records) {
      }
    } catch (const CsbError&) {
      // expected for malformed input
    }
  }
}

TEST_P(FuzzSeedTest, GraphBinaryLoaderRejectsGarbage) {
  Rng rng(GetParam() ^ 0xdef);
  for (int i = 0; i < 300; ++i) {
    auto bytes = random_bytes(rng, 256);
    // Half the time, start with the right magic to reach deeper code.
    if (rng.bernoulli(0.5) && bytes.size() >= 4) {
      bytes[0] = 'C';
      bytes[1] = 'S';
      bytes[2] = 'B';
      bytes[3] = 'G';
    }
    std::stringstream stream(
        std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    try {
      (void)load_binary(stream);
    } catch (const CsbError&) {
    } catch (const std::bad_alloc&) {
      // a garbage edge count may request a huge-but-bounded allocation
    }
  }
}

TEST_P(FuzzSeedTest, ProfileLoaderRejectsGarbage) {
  Rng rng(GetParam() ^ 0x123);
  for (int i = 0; i < 200; ++i) {
    auto bytes = random_bytes(rng, 256);
    if (rng.bernoulli(0.5) && bytes.size() >= 4) {
      bytes[0] = 'C';
      bytes[1] = 'S';
      bytes[2] = 'B';
      bytes[3] = 'P';
    }
    std::stringstream stream(
        std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    try {
      (void)SeedProfile::load(stream);
    } catch (const CsbError&) {
    } catch (const std::bad_alloc&) {
    }
  }
}

TEST_P(FuzzSeedTest, NetflowCsvRejectsGarbageLines) {
  Rng rng(GetParam() ^ 0x456);
  for (int i = 0; i < 200; ++i) {
    std::string text =
        "src_ip,dst_ip,protocol,src_port,dst_port,first_us,last_us,"
        "out_bytes,in_bytes,out_pkts,in_pkts,syn_count,ack_count,state\n";
    const auto bytes = random_bytes(rng, 120);
    text.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
    std::stringstream stream(text);
    try {
      (void)load_netflow_csv(stream);
    } catch (const CsbError&) {
    } catch (const std::exception&) {
      // std::stoul may throw its own exceptions for numeric garbage
    }
  }
}

TEST_P(FuzzSeedTest, IpParserRejectsGarbageStrings) {
  Rng rng(GetParam() ^ 0x789);
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    const std::size_t len = rng.uniform(16);
    for (std::size_t c = 0; c < len; ++c) {
      text.push_back(static_cast<char>('0' + rng.uniform(12)));  // digits + : ;
    }
    try {
      (void)ip_from_string(text);
    } catch (const CsbError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(RobustnessTest, ValidIpRoundTripUnderFuzzGrammar) {
  // Sanity companion to the fuzz test: well-formed inputs still parse.
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto ip = static_cast<std::uint32_t>(rng.uniform(1ULL << 32));
    EXPECT_EQ(ip_from_string(ip_to_string(ip)), ip);
  }
}

}  // namespace
}  // namespace csb
