// Schema-level tests: the §III NetFlow property enums, their string forms
// (which the CSV/GraphML formats depend on), and randomized IO round trips
// across all three graph formats.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph_io.hpp"
#include "graph/properties.hpp"
#include "graph/property_graph.hpp"
#include "util/random.hpp"

namespace csb {
namespace {

// ----------------------------------------------------------------- enums

TEST(SchemaTest, ProtocolStringsAndValues) {
  // IANA numbers, so PCAP protocol bytes map without translation.
  EXPECT_EQ(static_cast<int>(Protocol::kIcmp), 1);
  EXPECT_EQ(static_cast<int>(Protocol::kTcp), 6);
  EXPECT_EQ(static_cast<int>(Protocol::kUdp), 17);
  EXPECT_EQ(to_string(Protocol::kTcp), "TCP");
  EXPECT_EQ(to_string(Protocol::kUdp), "UDP");
  EXPECT_EQ(to_string(Protocol::kIcmp), "ICMP");
}

TEST(SchemaTest, ConnStateStringsAreBroStyle) {
  EXPECT_EQ(to_string(ConnState::kNone), "-");
  EXPECT_EQ(to_string(ConnState::kS0), "S0");
  EXPECT_EQ(to_string(ConnState::kS1), "S1");
  EXPECT_EQ(to_string(ConnState::kSF), "SF");
  EXPECT_EQ(to_string(ConnState::kRej), "REJ");
  EXPECT_EQ(to_string(ConnState::kRsto), "RSTO");
  EXPECT_EQ(to_string(ConnState::kRstr), "RSTR");
  EXPECT_EQ(to_string(ConnState::kOth), "OTH");
}

TEST(SchemaTest, AttributeCatalogueMatchesPaperSectionThree) {
  // The paper lists exactly nine De attributes.
  EXPECT_EQ(kNetflowAttributeCount, 9u);
  EXPECT_EQ(to_string(NetflowAttribute::kProtocol), "PROTOCOL");
  EXPECT_EQ(to_string(NetflowAttribute::kSrcPort), "SRC_PORT");
  EXPECT_EQ(to_string(NetflowAttribute::kDstPort), "DEST_PORT");
  EXPECT_EQ(to_string(NetflowAttribute::kDurationMs), "DURATION");
  EXPECT_EQ(to_string(NetflowAttribute::kOutBytes), "OUT_BYTES");
  EXPECT_EQ(to_string(NetflowAttribute::kInBytes), "IN_BYTES");
  EXPECT_EQ(to_string(NetflowAttribute::kOutPkts), "OUT_PKTS");
  EXPECT_EQ(to_string(NetflowAttribute::kInPkts), "IN_PKTS");
  EXPECT_EQ(to_string(NetflowAttribute::kState), "STATE");
}

TEST(SchemaTest, EdgePropertiesDefaultIsEmptyTcpTuple) {
  const EdgeProperties p{};
  EXPECT_EQ(p.protocol, Protocol::kTcp);
  EXPECT_EQ(p.out_bytes, 0u);
  EXPECT_EQ(p.state, ConnState::kNone);
  EXPECT_EQ(p, EdgeProperties{});
}

// ------------------------------------------------- randomized IO sweep

PropertyGraph random_property_graph(std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t vertices = 2 + rng.uniform(40);
  PropertyGraph g(vertices);
  const std::uint64_t edges = 1 + rng.uniform(120);
  constexpr Protocol kProtocols[] = {Protocol::kTcp, Protocol::kUdp,
                                     Protocol::kIcmp};
  constexpr ConnState kStates[] = {ConnState::kNone, ConnState::kS0,
                                   ConnState::kS1,   ConnState::kSF,
                                   ConnState::kRej,  ConnState::kRsto,
                                   ConnState::kRstr, ConnState::kOth};
  for (std::uint64_t e = 0; e < edges; ++e) {
    EdgeProperties p;
    p.protocol = kProtocols[rng.uniform(3)];
    p.src_port = static_cast<std::uint16_t>(rng.uniform(65536));
    p.dst_port = static_cast<std::uint16_t>(rng.uniform(65536));
    p.duration_ms = static_cast<std::uint32_t>(rng.uniform(1u << 30));
    p.out_bytes = rng.uniform(1ULL << 40);
    p.in_bytes = rng.uniform(1ULL << 40);
    p.out_pkts = static_cast<std::uint32_t>(rng.uniform(1u << 20));
    p.in_pkts = static_cast<std::uint32_t>(rng.uniform(1u << 20));
    p.state = p.protocol == Protocol::kTcp ? kStates[1 + rng.uniform(7)]
                                           : ConnState::kNone;
    // The last edge pins the highest vertex id so formats that infer the
    // vertex count from endpoints (CSV) reconstruct it exactly.
    if (e + 1 == edges) {
      g.add_edge(vertices - 1, 0, p);
    } else {
      g.add_edge(rng.uniform(vertices), rng.uniform(vertices), p);
    }
  }
  return g;
}

class IoSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoSweepTest, BinaryRoundTripsRandomGraphExactly) {
  const PropertyGraph g = random_property_graph(GetParam());
  std::stringstream buffer;
  save_binary(g, buffer);
  EXPECT_EQ(load_binary(buffer), g);
}

TEST_P(IoSweepTest, CsvRoundTripsRandomGraphExactly) {
  const PropertyGraph g = random_property_graph(GetParam() ^ 0xc5);
  std::stringstream buffer;
  save_csv(g, buffer);
  EXPECT_EQ(load_csv(buffer), g);
}

TEST_P(IoSweepTest, GraphmlRoundTripsRandomGraphExactly) {
  const PropertyGraph g = random_property_graph(GetParam() ^ 0x91);
  std::stringstream buffer;
  save_graphml(g, buffer);
  EXPECT_EQ(load_graphml(buffer), g);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoSweepTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace csb
