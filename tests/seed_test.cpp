// Unit tests for src/seed: NetFlow -> graph mapping, the Fig. 1 analysis
// step, the p(a | IN_BYTES) factorization, and the full PCAP pipeline.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/graph_io.hpp"
#include "obs/trace.hpp"
#include "pcap/pcap_file.hpp"
#include "seed/seed.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace csb {
namespace {

std::vector<NetflowRecord> tiny_records() {
  // Three hosts, four flows: A->B twice, B->C, C->A.
  NetflowRecord ab1;
  ab1.src_ip = 0x0a000001;
  ab1.dst_ip = 0x0a000002;
  ab1.protocol = Protocol::kTcp;
  ab1.src_port = 50000;
  ab1.dst_port = 80;
  ab1.first_us = 0;
  ab1.last_us = 1'000'000;
  ab1.out_bytes = 1000;
  ab1.in_bytes = 5000;
  ab1.out_pkts = 10;
  ab1.in_pkts = 12;
  ab1.state = ConnState::kSF;
  NetflowRecord ab2 = ab1;
  ab2.dst_port = 443;
  ab2.in_bytes = 800;
  NetflowRecord bc = ab1;
  bc.src_ip = 0x0a000002;
  bc.dst_ip = 0x0a000003;
  bc.in_bytes = 200000;
  NetflowRecord ca = ab1;
  ca.src_ip = 0x0a000003;
  ca.dst_ip = 0x0a000001;
  ca.protocol = Protocol::kUdp;
  ca.state = ConnState::kNone;
  return {ab1, ab2, bc, ca};
}

// ------------------------------------------------------- graph mapping

TEST(GraphFromNetflowTest, MapsHostsToDenseIds) {
  const auto graph = graph_from_netflow(tiny_records());
  EXPECT_EQ(graph.num_vertices(), 3u);
  EXPECT_EQ(graph.num_edges(), 4u);
  EXPECT_TRUE(graph.has_properties());
  // First appearance order: A=0, B=1, C=2.
  EXPECT_EQ(graph.edge_src(0), 0u);
  EXPECT_EQ(graph.edge_dst(0), 1u);
  EXPECT_EQ(graph.edge_src(2), 1u);
  EXPECT_EQ(graph.edge_dst(2), 2u);
  EXPECT_EQ(graph.edge_src(3), 2u);
  EXPECT_EQ(graph.edge_dst(3), 0u);
}

TEST(GraphFromNetflowTest, PreservesNetflowAttributes) {
  const auto records = tiny_records();
  const auto graph = graph_from_netflow(records);
  const EdgeProperties p = graph.edge_properties(2);
  EXPECT_EQ(p.in_bytes, 200000u);
  EXPECT_EQ(p.duration_ms, 1000u);
  EXPECT_EQ(p.state, ConnState::kSF);
  EXPECT_EQ(graph.edge_properties(3).protocol, Protocol::kUdp);
}

TEST(GraphFromNetflowTest, EmptyInputGivesEmptyGraph) {
  const auto graph = graph_from_netflow({});
  EXPECT_EQ(graph.num_vertices(), 0u);
  EXPECT_EQ(graph.num_edges(), 0u);
}

// ------------------------------------------------------ incremental builder

TEST(IncrementalBuilderTest, MatchesBatchConstruction) {
  const auto records = tiny_records();
  IncrementalGraphBuilder builder;
  for (const auto& rec : records) builder.add(rec);
  EXPECT_EQ(builder.graph(), graph_from_netflow(records));
  EXPECT_EQ(builder.flows_ingested(), records.size());
}

TEST(IncrementalBuilderTest, IpMappingIsBidirectional) {
  IncrementalGraphBuilder builder;
  const auto records = tiny_records();
  for (const auto& rec : records) builder.add(rec);
  for (VertexId v = 0; v < builder.graph().num_vertices(); ++v) {
    EXPECT_EQ(builder.vertex_of(builder.ip_of(v)), v);
  }
  EXPECT_THROW((void)builder.ip_of(999), CsbError);
}

TEST(IncrementalBuilderTest, GraphIsValidMidStream) {
  IncrementalGraphBuilder builder;
  const auto records = tiny_records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    builder.add(records[i]);
    // Any prefix must be a well-formed property graph.
    EXPECT_EQ(builder.graph().num_edges(), i + 1);
    EXPECT_TRUE(builder.graph().has_properties());
  }
}

TEST(IncrementalBuilderTest, TakeResetsBuilder) {
  IncrementalGraphBuilder builder;
  for (const auto& rec : tiny_records()) builder.add(rec);
  const PropertyGraph taken = builder.take();
  EXPECT_EQ(taken.num_edges(), 4u);
  EXPECT_EQ(builder.graph().num_edges(), 0u);
  EXPECT_EQ(builder.graph().num_vertices(), 0u);
  // The builder is reusable: old IPs get fresh ids.
  builder.add(tiny_records().front());
  EXPECT_EQ(builder.graph().num_vertices(), 2u);
}

// ----------------------------------------------------------- seed profile

TEST(SeedProfileTest, DegreeDistributionsMatchGraph) {
  const auto graph = graph_from_netflow(tiny_records());
  const auto profile = SeedProfile::analyze(graph);
  // Out-degrees: A=2, B=1, C=1 -> support {1, 2}, P(1)=2/3.
  EXPECT_EQ(profile.out_degree().support_size(), 2u);
  EXPECT_NEAR(profile.out_degree().pmf(1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(profile.out_degree().pmf(2), 1.0 / 3.0, 1e-12);
  // In-degrees: A=1, B=2, C=1.
  EXPECT_NEAR(profile.in_degree().pmf(2), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(profile.seed_vertices(), 3u);
  EXPECT_EQ(profile.seed_edges(), 4u);
}

TEST(SeedProfileTest, InBytesMarginalMatchesSeed) {
  const auto graph = graph_from_netflow(tiny_records());
  const auto profile = SeedProfile::analyze(graph);
  EXPECT_NEAR(profile.in_bytes().pmf(5000), 0.5, 1e-12);
  EXPECT_NEAR(profile.in_bytes().pmf(800), 0.25, 1e-12);
  EXPECT_NEAR(profile.in_bytes().pmf(200000), 0.25, 1e-12);
}

TEST(SeedProfileTest, SampledPropertiesStayInSeedSupport) {
  const auto graph = graph_from_netflow(tiny_records());
  const auto profile = SeedProfile::analyze(graph);
  const std::set<std::uint64_t> seed_in_bytes = {5000, 800, 200000};
  const std::set<std::uint16_t> seed_ports = {80, 443};
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const EdgeProperties p = profile.sample_properties(rng);
    EXPECT_TRUE(seed_in_bytes.contains(p.in_bytes));
    EXPECT_TRUE(seed_ports.contains(p.dst_port));
    EXPECT_TRUE(p.protocol == Protocol::kTcp || p.protocol == Protocol::kUdp);
    EXPECT_TRUE(p.state == ConnState::kSF || p.state == ConnState::kNone);
    EXPECT_EQ(p.out_bytes, 1000u);
    EXPECT_EQ(p.duration_ms, 1000u);
  }
}

TEST(SeedProfileTest, ConditionalStructureIsRespected) {
  // in_bytes 800 only ever co-occurs with dst_port 443 in the seed, so the
  // conditional p(dst_port | in_bytes=800-bucket) must put all mass there.
  const auto graph = graph_from_netflow(tiny_records());
  const auto profile = SeedProfile::analyze(graph);
  Rng rng(4);
  int n800 = 0;
  for (int i = 0; i < 2000 && n800 < 50; ++i) {
    const EdgeProperties p = profile.sample_properties(rng);
    if (p.in_bytes == 800) {
      ++n800;
      EXPECT_EQ(p.dst_port, 443u);
      EXPECT_EQ(p.protocol, Protocol::kTcp);
    }
  }
  EXPECT_GT(n800, 0);
}

TEST(SeedProfileTest, RejectsStructureOnlyOrEmptySeed) {
  PropertyGraph structure_only(3);
  structure_only.add_edge(0, 1);
  EXPECT_THROW(SeedProfile::analyze(structure_only), CsbError);
  PropertyGraph empty(3);
  EXPECT_THROW(SeedProfile::analyze(empty), CsbError);
}

TEST(SeedProfileTest, PropertyCountMatchesSchema) {
  EXPECT_EQ(SeedProfile::property_count(), kNetflowAttributeCount);
  EXPECT_EQ(SeedProfile::property_count(), 9u);
}

// -------------------------------------------------------- full pipeline

TEST(SeedPipelineTest, PacketsToSeedBundle) {
  TrafficModelConfig config;
  config.benign_sessions = 300;
  const auto sessions = TrafficModel(config).generate_benign();
  const auto packets = sessions_to_packets(sessions);
  const SeedBundle bundle = build_seed_from_packets(packets);
  // Each session is a distinct flow (up to rare 5-tuple collisions).
  EXPECT_GE(bundle.graph.num_edges(), 290u);
  EXPECT_LE(bundle.graph.num_edges(), 300u);
  EXPECT_GT(bundle.graph.num_vertices(), 50u);
  EXPECT_TRUE(bundle.graph.has_properties());
  EXPECT_EQ(bundle.profile.seed_edges(), bundle.graph.num_edges());
}

TEST(SeedPipelineTest, NetflowShortcutMatchesPacketPath) {
  TrafficModelConfig config;
  config.benign_sessions = 150;
  const auto sessions = TrafficModel(config).generate_benign();
  const SeedBundle via_packets =
      build_seed_from_packets(sessions_to_packets(sessions));
  const SeedBundle via_netflow =
      build_seed_from_netflow(sessions_to_netflow(sessions));
  // Both paths must agree on scale; flow-level details may differ by
  // 5-tuple collisions only.
  EXPECT_NEAR(static_cast<double>(via_packets.graph.num_edges()),
              static_cast<double>(via_netflow.graph.num_edges()), 5.0);
  EXPECT_EQ(via_packets.graph.num_vertices(),
            via_netflow.graph.num_vertices());
}

TEST(SeedProfileIoTest, RoundTripsExactly) {
  const auto graph = graph_from_netflow(tiny_records());
  const SeedProfile profile = SeedProfile::analyze(graph);
  std::stringstream buffer;
  profile.save(buffer);
  const SeedProfile loaded = SeedProfile::load(buffer);
  EXPECT_TRUE(loaded == profile);
  EXPECT_EQ(loaded.seed_vertices(), profile.seed_vertices());
  // Sampling behaves identically after the round trip.
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(profile.sample_properties(a), loaded.sample_properties(b));
  }
}

TEST(SeedProfileIoTest, FileRoundTripAndErrors) {
  TrafficModelConfig config;
  config.benign_sessions = 200;
  const SeedBundle bundle = build_seed_from_netflow(
      sessions_to_netflow(TrafficModel(config).generate_benign()));
  const std::string path = ::testing::TempDir() + "/csb_profile_test.bin";
  bundle.profile.save_file(path);
  EXPECT_TRUE(SeedProfile::load_file(path) == bundle.profile);

  std::stringstream bad("not a profile at all............");
  EXPECT_THROW(SeedProfile::load(bad), CsbError);

  std::stringstream truncated;
  bundle.profile.save(truncated);
  std::string bytes = truncated.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes);
  EXPECT_THROW(SeedProfile::load(half), CsbError);
}

// ------------------------------------------------------ pool determinism

std::string serialized_bundle(const SeedBundle& bundle) {
  // Exactly what `csbgen seed` writes: the binary graph plus the profile.
  std::stringstream out;
  save_binary(bundle.graph, out);
  bundle.profile.save(out);
  return out.str();
}

TEST(SeedDeterminismTest, NetflowSeedIdenticalAcrossPoolSizes) {
  // Enough records that the chunked graph build and profile fits actually
  // run multi-chunk; the serialized seed must be byte-identical to the
  // serial build at every pool size, including a single-worker pool.
  TrafficModelConfig config;
  config.benign_sessions = 6'000;
  config.client_hosts = 500;
  config.server_hosts = 80;
  const auto records =
      sessions_to_netflow(TrafficModel(config).generate_benign());
  ASSERT_GT(records.size(), 2'048u);
  const SeedBundle serial = build_seed_from_netflow(records);
  const std::string serial_bytes = serialized_bundle(serial);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    SeedOptions options;
    options.pool = &pool;
    const SeedBundle pooled = build_seed_from_netflow(records, options);
    EXPECT_EQ(pooled.graph, serial.graph) << threads << " threads";
    EXPECT_TRUE(pooled.profile == serial.profile) << threads << " threads";
    EXPECT_EQ(serialized_bundle(pooled), serial_bytes)
        << threads << " threads";
  }
}

TEST(SeedDeterminismTest, PcapSeedIdenticalAcrossPoolSizes) {
  // End-to-end from a capture file: indexed read, chunked decode, sharded
  // flow assembly, parallel graph build and profile — all byte-identical
  // to the serial pipeline.
  TrafficModelConfig config;
  config.benign_sessions = 2'500;
  const auto packets =
      sessions_to_packets(TrafficModel(config).generate_benign());
  const std::string path =
      ::testing::TempDir() + "/csb_seed_determinism.pcap";
  write_pcap_file(path, packets);
  const SeedBundle serial = build_seed_from_pcap_file(path);
  const std::string serial_bytes = serialized_bundle(serial);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    SeedOptions options;
    options.pool = &pool;
    const SeedBundle pooled = build_seed_from_pcap_file(path, options);
    EXPECT_EQ(pooled.graph, serial.graph) << threads << " threads";
    EXPECT_TRUE(pooled.profile == serial.profile) << threads << " threads";
    EXPECT_EQ(serialized_bundle(pooled), serial_bytes)
        << threads << " threads";
  }
}

TEST(SeedDeterminismTest, BooksSeedSubPhases) {
  // The parallel pipeline reports its stages through the csb.trace.v1
  // recorder: every sub-span of the ingestion path must appear.
  TrafficModelConfig config;
  config.benign_sessions = 3'000;
  const auto packets =
      sessions_to_packets(TrafficModel(config).generate_benign());
  const std::string path = ::testing::TempDir() + "/csb_seed_phases.pcap";
  write_pcap_file(path, packets);

  TraceRecorder recorder;
  TraceRecorder::set_current(&recorder);
  ThreadPool pool(2);
  SeedOptions options;
  options.pool = &pool;
  const SeedBundle bundle = build_seed_from_pcap_file(path, options);
  TraceRecorder::set_current(nullptr);
  ASSERT_GT(bundle.graph.num_edges(), 2'048u);

  std::set<std::string> names;
  for (const auto& span : recorder.spans()) names.insert(span.name);
  for (const char* expected :
       {"seed:index", "seed:decode", "seed:assemble-flows",
        "seed:build-graph", "seed:build-graph:scan",
        "seed:build-graph:remap", "seed:build-graph:fill", "seed:profile",
        "seed:profile:structure", "seed:profile:attributes"}) {
    EXPECT_TRUE(names.contains(expected)) << "missing span " << expected;
  }
}

TEST(SeedPipelineTest, PcapFileRoundTrip) {
  TrafficModelConfig config;
  config.benign_sessions = 60;
  const auto sessions = TrafficModel(config).generate_benign();
  const auto packets = sessions_to_packets(sessions);
  const std::string path = ::testing::TempDir() + "/csb_seed_test.pcap";
  write_pcap_file(path, packets);
  const SeedBundle bundle = build_seed_from_pcap_file(path);
  EXPECT_GT(bundle.graph.num_edges(), 50u);
}

}  // namespace
}  // namespace csb
