// Unit and property tests for src/stats: alias sampling, histograms,
// empirical/conditional distributions, power-law fitting, distances.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "stats/alias_table.hpp"
#include "stats/conditional.hpp"
#include "stats/descriptive.hpp"
#include "stats/distance.hpp"
#include "stats/empirical.hpp"
#include "stats/histogram.hpp"
#include "stats/power_law.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace csb {
namespace {

// ------------------------------------------------------------ alias table

class AliasWeightsTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(AliasWeightsTest, EmpiricalFrequenciesMatchWeights) {
  const auto weights = GetParam();
  const AliasTable table(weights);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  Rng rng(11);
  std::vector<int> counts(weights.size(), 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[table.sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / total;
    const double observed = static_cast<double>(counts[i]) / kDraws;
    EXPECT_NEAR(observed, expected, 0.01) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Weights, AliasWeightsTest,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{1.0, 1.0},
                      std::vector<double>{0.1, 0.9},
                      std::vector<double>{5.0, 1.0, 1.0, 1.0},
                      std::vector<double>{0.0, 1.0, 0.0, 3.0},
                      std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));

TEST(AliasTableTest, RejectsEmptyAndNegativeAndZeroTotal) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), CsbError);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -0.5}), CsbError);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), CsbError);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  const AliasTable table(std::vector<double>{0.0, 1.0});
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(table.sample(rng), 1u);
}

// -------------------------------------------------------------- histogram

TEST(HistogramTest, BinsAndFractions) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  h.add(9.9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CsbError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CsbError);
}

struct Log2Case {
  std::uint64_t value;
  std::size_t bin;
};

class Log2HistogramTest : public ::testing::TestWithParam<Log2Case> {};

TEST_P(Log2HistogramTest, MapsValueToBin) {
  Log2Histogram h;
  h.add(GetParam().value);
  EXPECT_DOUBLE_EQ(h.count(GetParam().bin), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Cases, Log2HistogramTest,
                         ::testing::Values(Log2Case{1, 0}, Log2Case{2, 1},
                                           Log2Case{3, 1}, Log2Case{4, 2},
                                           Log2Case{7, 2}, Log2Case{8, 3},
                                           Log2Case{1023, 9},
                                           Log2Case{1024, 10}));

TEST(Log2HistogramTest, ZeroGoesToUnderflow) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  EXPECT_DOUBLE_EQ(h.zero_count(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Log2HistogramTest, BinCenterIsGeometric) {
  EXPECT_NEAR(Log2Histogram::bin_center(0), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(Log2Histogram::bin_center(3), std::sqrt(8.0 * 16.0), 1e-9);
}

// -------------------------------------------------------------- empirical

TEST(EmpiricalTest, PmfAndMomentsFromSamples) {
  const std::vector<double> samples = {1, 1, 2, 4};
  const auto dist = EmpiricalDistribution::from_samples(samples);
  EXPECT_EQ(dist.support_size(), 3u);
  EXPECT_DOUBLE_EQ(dist.pmf(1), 0.5);
  EXPECT_DOUBLE_EQ(dist.pmf(2), 0.25);
  EXPECT_DOUBLE_EQ(dist.pmf(4), 0.25);
  EXPECT_DOUBLE_EQ(dist.pmf(3), 0.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 2.0);
  EXPECT_DOUBLE_EQ(dist.min(), 1.0);
  EXPECT_DOUBLE_EQ(dist.max(), 4.0);
}

TEST(EmpiricalTest, QuantileSteps) {
  const auto dist =
      EmpiricalDistribution::from_samples(std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.26), 2.0);
  EXPECT_DOUBLE_EQ(dist.quantile(1.0), 4.0);
}

TEST(EmpiricalTest, SamplingMatchesPmf) {
  const auto dist = EmpiricalDistribution::from_weighted(
      {{10.0, 0.7}, {20.0, 0.2}, {30.0, 0.1}});
  Rng rng(9);
  int count10 = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (dist.sample(rng) == 10.0) ++count10;
  }
  EXPECT_NEAR(static_cast<double>(count10) / kDraws, 0.7, 0.01);
}

TEST(EmpiricalTest, WeightedMergesDuplicates) {
  const auto dist = EmpiricalDistribution::from_weighted(
      {{5.0, 1.0}, {5.0, 3.0}, {6.0, 4.0}});
  EXPECT_EQ(dist.support_size(), 2u);
  EXPECT_DOUBLE_EQ(dist.pmf(5.0), 0.5);
}

TEST(EmpiricalTest, DropsZeroWeightValues) {
  const auto dist =
      EmpiricalDistribution::from_weighted({{1.0, 0.0}, {2.0, 1.0}});
  EXPECT_EQ(dist.support_size(), 1u);
}

TEST(EmpiricalTest, RejectsInvalidInput) {
  EXPECT_THROW(EmpiricalDistribution::from_samples(std::vector<double>{}),
               CsbError);
  EXPECT_THROW(EmpiricalDistribution::from_weighted({{1.0, -1.0}}), CsbError);
  EXPECT_THROW(EmpiricalDistribution::from_weighted({{1.0, 0.0}}), CsbError);
}

TEST(EmpiricalTest, VarianceMatchesDefinition) {
  const auto dist =
      EmpiricalDistribution::from_samples(std::vector<double>{2, 4});
  EXPECT_DOUBLE_EQ(dist.variance(), 1.0);  // E[(x-3)^2] with mass 1/2 each
}

// ------------------------------------------------------------ conditional

struct BucketCase {
  std::uint64_t condition;
  std::uint32_t bucket;
};

class BucketOfTest : public ::testing::TestWithParam<BucketCase> {};

TEST_P(BucketOfTest, Maps) {
  EXPECT_EQ(ConditionalDistribution::bucket_of(GetParam().condition),
            GetParam().bucket);
}

INSTANTIATE_TEST_SUITE_P(Cases, BucketOfTest,
                         ::testing::Values(BucketCase{0, 0}, BucketCase{1, 1},
                                           BucketCase{2, 2}, BucketCase{3, 2},
                                           BucketCase{4, 3},
                                           BucketCase{1024, 11},
                                           BucketCase{1ULL << 40, 41}));

TEST(ConditionalTest, SamplesFromMatchingBucketOnly) {
  // Condition < 2 -> value 100; condition >= 1024 -> value 900.
  std::vector<std::pair<std::uint64_t, double>> obs;
  for (int i = 0; i < 50; ++i) obs.emplace_back(1, 100.0);
  for (int i = 0; i < 50; ++i) obs.emplace_back(2048, 900.0);
  const auto dist = ConditionalDistribution::fit(obs);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(dist.sample(1, rng), 100.0);
    EXPECT_DOUBLE_EQ(dist.sample(2048, rng), 900.0);
    EXPECT_DOUBLE_EQ(dist.sample(3000, rng), 900.0);  // same log2 bucket
  }
}

TEST(ConditionalTest, FallsBackToMarginalForUnseenBucket) {
  std::vector<std::pair<std::uint64_t, double>> obs = {{1, 5.0}, {1, 5.0}};
  const auto dist = ConditionalDistribution::fit(obs);
  Rng rng(4);
  // Bucket of 1e6 was never observed; the marginal only contains 5.0.
  EXPECT_DOUBLE_EQ(dist.sample(1'000'000, rng), 5.0);
}

TEST(ConditionalTest, TracksBucketCount) {
  std::vector<std::pair<std::uint64_t, double>> obs = {
      {0, 1.0}, {1, 2.0}, {9, 3.0}, {9, 4.0}};
  const auto dist = ConditionalDistribution::fit(obs);
  EXPECT_EQ(dist.bucket_count(), 3u);  // buckets 0, 1, 4
  EXPECT_TRUE(dist.has_bucket(0));
  EXPECT_TRUE(dist.has_bucket(4));
  EXPECT_FALSE(dist.has_bucket(7));
}

TEST(ConditionalTest, RejectsEmpty) {
  EXPECT_THROW(
      ConditionalDistribution::fit(
          std::vector<std::pair<std::uint64_t, double>>{}),
      CsbError);
}

// ----------------------------------------- deterministic parallel fitting

TEST(EmpiricalTest, ParallelFromSamplesMatchesSerial) {
  // Enough samples to span several sort chunks, with heavy duplication so
  // chunk-boundary run accumulation is exercised. Exact (bitwise) equality
  // is the contract, not approximate.
  Rng rng(17);
  std::vector<double> samples(100'000);
  for (auto& s : samples) s = std::floor(rng.uniform_double() * 500.0);
  const auto serial = EmpiricalDistribution::from_samples(samples);
  ThreadPool pool(4);
  const auto parallel = EmpiricalDistribution::from_samples(samples, &pool);
  EXPECT_EQ(serial.values(), parallel.values());
  EXPECT_EQ(serial.probabilities(), parallel.probabilities());
  EXPECT_EQ(serial.mean(), parallel.mean());
  EXPECT_EQ(serial.variance(), parallel.variance());
}

TEST(ConditionalTest, ParallelFitMatchesSerial) {
  // Spans several fit chunks and many log2 buckets; serial and pooled fits
  // must agree exactly on every bucket and the marginal.
  Rng rng(23);
  std::vector<std::pair<std::uint64_t, double>> obs(120'000);
  for (auto& [c, v] : obs) {
    c = static_cast<std::uint64_t>(rng.uniform_double() * (1 << 20));
    v = std::floor(rng.uniform_double() * 300.0);
  }
  const auto serial = ConditionalDistribution::fit(obs);
  ThreadPool pool(4);
  const auto parallel = ConditionalDistribution::fit(obs, &pool);
  ASSERT_EQ(serial.bucket_keys(), parallel.bucket_keys());
  for (const auto b : serial.bucket_keys()) {
    EXPECT_EQ(serial.bucket(b).values(), parallel.bucket(b).values());
    EXPECT_EQ(serial.bucket(b).probabilities(),
              parallel.bucket(b).probabilities());
  }
  EXPECT_EQ(serial.marginal().values(), parallel.marginal().values());
  EXPECT_EQ(serial.marginal().probabilities(),
            parallel.marginal().probabilities());
}

TEST(ConditionalTest, ColumnFitMatchesPairFit) {
  Rng rng(29);
  std::vector<std::uint64_t> conditions(5'000);
  std::vector<double> values(conditions.size());
  std::vector<std::pair<std::uint64_t, double>> obs(conditions.size());
  for (std::size_t i = 0; i < conditions.size(); ++i) {
    conditions[i] = static_cast<std::uint64_t>(rng.uniform_double() * 4096.0);
    values[i] = std::floor(rng.uniform_double() * 64.0);
    obs[i] = {conditions[i], values[i]};
  }
  const auto from_pairs = ConditionalDistribution::fit(obs);
  const auto from_columns = ConditionalDistribution::fit(
      conditions, [&](std::size_t i) { return values[i]; });
  ASSERT_EQ(from_pairs.bucket_keys(), from_columns.bucket_keys());
  for (const auto b : from_pairs.bucket_keys()) {
    EXPECT_EQ(from_pairs.bucket(b).values(), from_columns.bucket(b).values());
    EXPECT_EQ(from_pairs.bucket(b).probabilities(),
              from_columns.bucket(b).probabilities());
  }
  EXPECT_EQ(from_pairs.marginal().values(), from_columns.marginal().values());
}

// -------------------------------------------------------------- power law

class PowerLawRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawRecoveryTest, MleRecoversAlpha) {
  // The discrete continuous-approximation MLE is accurate for xmin >~ 6
  // (Clauset et al. 2009, Table 3); test in its validity domain.
  const double alpha = GetParam();
  const double xmin = 10.0;
  Rng rng(100 + static_cast<std::uint64_t>(alpha * 10));
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(
        static_cast<double>(sample_power_law(rng, alpha, xmin)));
  }
  const double fitted = fit_power_law_alpha(samples, xmin);
  EXPECT_NEAR(fitted, alpha, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Alphas, PowerLawRecoveryTest,
                         ::testing::Values(1.8, 2.1, 2.5, 3.0));

TEST(PowerLawTest, FullFitFindsSmallKs) {
  Rng rng(55);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(static_cast<double>(sample_power_law(rng, 2.3, 8.0)));
  }
  const PowerLawFit fit = fit_power_law(samples);
  EXPECT_LT(fit.ks, 0.05);
  EXPECT_GT(fit.alpha, 1.8);
  EXPECT_LT(fit.alpha, 2.8);
  EXPECT_GT(fit.tail_n, 50u);
}

TEST(PowerLawTest, KsLargeForNonPowerLaw) {
  // Uniform integers in [1, 100] are far from any power law.
  Rng rng(66);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(static_cast<double>(1 + rng.uniform(100)));
  }
  const double alpha = fit_power_law_alpha(samples, 1.0);
  EXPECT_GT(power_law_ks(samples, alpha, 1.0), 0.1);
}

TEST(PowerLawTest, SampleRespectsXmin) {
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(sample_power_law(rng, 2.5, 5.0), 5u);
  }
}

TEST(PowerLawTest, RejectsBadArguments) {
  EXPECT_THROW(fit_power_law_alpha(std::vector<double>{2, 3}, 0.5), CsbError);
  Rng rng(1);
  EXPECT_THROW(sample_power_law(rng, 1.0), CsbError);
  EXPECT_THROW(fit_power_law(std::vector<double>{}), CsbError);
}

// --------------------------------------------------------------- distance

TEST(DistanceTest, NormalizeBySum) {
  const auto out = normalize_by_sum(std::vector<double>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 0.75);
  EXPECT_THROW(normalize_by_sum(std::vector<double>{}), CsbError);
  EXPECT_THROW(normalize_by_sum(std::vector<double>{0.0, 0.0}), CsbError);
}

TEST(DistanceTest, SortedQuantileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 1.0), 10.0);
  const std::vector<double> single = {7.0};
  EXPECT_DOUBLE_EQ(sorted_quantile(single, 0.3), 7.0);
}

TEST(DistanceTest, QuantileEuclideanIdenticalIsZero) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile_euclidean_distance(v, v), 0.0);
}

TEST(DistanceTest, QuantileEuclideanDetectsShift) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b;
  for (const double x : a) b.push_back(x + 2.0);
  EXPECT_NEAR(quantile_euclidean_distance(a, b), 2.0, 1e-9);
}

TEST(DistanceTest, QuantileEuclideanHandlesDifferentSizes) {
  const std::vector<double> a = {1, 1, 1, 1, 1, 1};
  const std::vector<double> b = {1, 1};
  EXPECT_DOUBLE_EQ(quantile_euclidean_distance(a, b), 0.0);
}

TEST(DistanceTest, KsIdenticalZeroDisjointOne) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 20, 30};
  EXPECT_DOUBLE_EQ(ks_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(DistanceTest, KsHalfOverlap) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {2, 3};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.5);
}

// ------------------------------------------------------------ descriptive

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> xs = {3, 1, 4, 1, 5, 9, 2, 6};
  for (const double x : xs) stats.add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_DOUBLE_EQ(stats.sum(), 31.0);
  EXPECT_NEAR(stats.mean(), 3.875, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  // Sample variance, direct formula.
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - 3.875) * (x - 3.875);
  EXPECT_NEAR(stats.variance(), m2 / (xs.size() - 1), 1e-12);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    a.add(i * 1.5);
    all.add(i * 1.5);
  }
  for (int i = 50; i < 120; ++i) {
    b.add(i * 0.25);
    all.add(i * 0.25);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(5.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

}  // namespace
}  // namespace csb
