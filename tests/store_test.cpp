// Unit tests for src/store: the GraphStore sink contract (MemoryStore ==
// classic path), the ShardStore on-disk round trip and its determinism
// across shard counts and pool sizes, the mmap CSR index, corrupt-store
// error paths, ExternalDistinct, the GraphFormat registry, and the typed
// generator option descriptors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "gen/fast_samplers.hpp"
#include "gen/generator.hpp"
#include "gen/pgpba.hpp"
#include "gen/pgsk.hpp"
#include "graph/algorithms.hpp"
#include "graph/csr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "seed/seed.hpp"
#include "store/external_sort.hpp"
#include "store/graph_format.hpp"
#include "store/graph_store.hpp"
#include "store/shard_store.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "veracity/veracity.hpp"

namespace csb {
namespace {

namespace fs = std::filesystem;

SeedBundle small_seed(std::uint64_t sessions = 600) {
  TrafficModelConfig config;
  config.benign_sessions = sessions;
  config.client_hosts = 120;
  config.server_hosts = 30;
  return build_seed_from_netflow(
      sessions_to_netflow(TrafficModel(config).generate_benign()));
}

ClusterConfig four_cores() {
  return ClusterConfig{.nodes = 2, .cores_per_node = 2};
}

/// Fresh scratch directory under the system temp root, removed on scope
/// exit so repeated test runs never see stale stores.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("csb_store_test_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] fs::path path() const { return path_; }

 private:
  fs::path path_;
};

std::string read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

PgskFastOptions pgsk_options(const SeedBundle& seed) {
  PgskFastOptions options;
  options.desired_edges = 6 * seed.graph.num_edges();
  options.seed = 11;
  options.fit.gradient_iterations = 2;
  options.fit.swaps_per_iteration = 50;
  options.fit.burn_in_swaps = 50;
  return options;
}

PgpbaFastOptions pgpba_options(const SeedBundle& seed) {
  PgpbaFastOptions options;
  options.desired_edges = 6 * seed.graph.num_edges();
  options.seed = 11;
  return options;
}

// ------------------------------------------------- MemoryStore == classic

TEST(MemoryStoreTest, PgskFastSinkMatchesClassicByteForByte) {
  const SeedBundle seed = small_seed();
  const auto options = pgsk_options(seed);
  ClusterSim c1(four_cores());
  const GenResult classic =
      pgsk_fast_generate(seed.graph, seed.profile, c1, options);

  ClusterSim c2(four_cores());
  MemoryStore store;
  const StoreGenResult streamed = pgsk_fast_generate_into(
      seed.graph, seed.profile, c2, options, FastSinkOptions{}, store);
  EXPECT_EQ(store.graph(), classic.graph);
  EXPECT_EQ(streamed.edges, classic.graph.num_edges());
  EXPECT_EQ(streamed.vertices, classic.graph.num_vertices());
}

TEST(MemoryStoreTest, PgpbaFastSinkMatchesClassicByteForByte) {
  const SeedBundle seed = small_seed();
  const auto options = pgpba_options(seed);
  ClusterSim c1(four_cores());
  const GenResult classic =
      pgpba_fast_generate(seed.graph, seed.profile, c1, options);

  ClusterSim c2(four_cores());
  MemoryStore store;
  const StoreGenResult streamed = pgpba_fast_generate_into(
      seed.graph, seed.profile, c2, options, store);
  EXPECT_EQ(store.graph(), classic.graph);
  EXPECT_EQ(streamed.edges, classic.graph.num_edges());
}

TEST(MemoryStoreTest, DefaultGenerateIntoReplaysClassicResult) {
  // A generator without a streaming override (chung-lu) goes through the
  // base-class store:replay path and must land the identical graph.
  const SeedBundle seed = small_seed(300);
  const Generator& generator = require_generator("chung-lu");
  GenConfig config;
  config.desired_edges = 3 * seed.graph.num_edges();
  config.seed = 5;

  ClusterSim c1(four_cores());
  const GenResult classic =
      generator.generate(seed.graph, seed.profile, c1, config);
  ClusterSim c2(four_cores());
  MemoryStore store;
  const StoreGenResult streamed =
      generator.generate_into(seed.graph, seed.profile, c2, config, store);
  EXPECT_EQ(store.graph(), classic.graph);
  EXPECT_EQ(streamed.edges, classic.graph.num_edges());
}

// --------------------------------------------- exact generators, streamed

PgskOptions pgsk_exact_options(const SeedBundle& seed) {
  PgskOptions options;
  options.desired_edges = 4 * seed.graph.num_edges();
  options.seed = 11;
  options.fit.gradient_iterations = 2;
  options.fit.swaps_per_iteration = 50;
  options.fit.burn_in_swaps = 50;
  return options;
}

PgpbaOptions pgpba_exact_options(const SeedBundle& seed) {
  PgpbaOptions options;
  options.desired_edges = 4 * seed.graph.num_edges();
  options.seed = 11;
  return options;
}

// pgpba_generate (materialize + assign_properties) and pgpba_generate_into
// (store:emit + store:props) are independent back ends over the same growth
// state — the MemoryStore sink must land the identical graph.
TEST(MemoryStoreTest, PgpbaExactSinkMatchesClassicByteForByte) {
  const SeedBundle seed = small_seed(300);
  const auto options = pgpba_exact_options(seed);
  ClusterSim c1(four_cores());
  const GenResult classic =
      pgpba_generate(seed.graph, seed.profile, c1, options);

  ClusterSim c2(four_cores());
  MemoryStore store;
  const StoreGenResult streamed =
      pgpba_generate_into(seed.graph, seed.profile, c2, options, store);
  EXPECT_EQ(store.graph(), classic.graph);
  EXPECT_EQ(streamed.edges, classic.graph.num_edges());
  EXPECT_EQ(streamed.vertices, classic.graph.num_vertices());
  EXPECT_EQ(streamed.iterations, classic.iterations);
}

// pgsk_generate is the MemoryStore wrapper of pgsk_generate_into, so the
// classic API and a fresh sink run must agree exactly (and with a second
// cluster, this also pins run-to-run determinism of the streamed pipeline).
TEST(MemoryStoreTest, PgskExactSinkMatchesClassicByteForByte) {
  const SeedBundle seed = small_seed(300);
  const auto options = pgsk_exact_options(seed);
  ClusterSim c1(four_cores());
  const GenResult classic =
      pgsk_generate(seed.graph, seed.profile, c1, options);
  EXPECT_GT(classic.graph.num_edges(), 0u);

  ClusterSim c2(four_cores());
  MemoryStore store;
  const StoreGenResult streamed =
      pgsk_generate_into(seed.graph, seed.profile, c2, options, store);
  EXPECT_EQ(store.graph(), classic.graph);
  EXPECT_EQ(streamed.edges, classic.graph.num_edges());
  EXPECT_EQ(streamed.vertices, classic.graph.num_vertices());
}

// The streamed exact generators must not fall back to the base-class
// store:replay path: their spans are store:distinct/count/begin/emit/props/
// finalize, never store:replay.
TEST(MemoryStoreTest, ExactGeneratorsEmitNoReplaySpan) {
  const SeedBundle seed = small_seed(300);
  for (const char* name : {"pgsk", "pgpba"}) {
    const Generator& generator = require_generator(name);
    GenConfig config;
    config.desired_edges = 3 * seed.graph.num_edges();
    config.partitions = 4;
    config.seed = 7;
    ClusterSim cluster(four_cores());
    TraceRecorder recorder;
    cluster.set_trace(&recorder);
    MemoryStore store;
    const StoreGenResult streamed =
        generator.generate_into(seed.graph, seed.profile, cluster, config,
                                store);
    cluster.set_trace(nullptr);
    EXPECT_GT(streamed.edges, 0u) << name;

    bool saw_emit = false;
    for (const SpanRecord& span : recorder.spans()) {
      EXPECT_NE(span.name, "store:replay") << name;
      if (span.name == "store:emit") saw_emit = true;
    }
    EXPECT_TRUE(saw_emit) << name;
  }
}

TEST(ShardStoreTest, ExactPgskRoundTripAcrossShardAndPoolCounts) {
  const SeedBundle seed = small_seed(300);
  const auto options = pgsk_exact_options(seed);

  ClusterSim baseline_cluster(four_cores());
  MemoryStore baseline;
  (void)pgsk_generate_into(seed.graph, seed.profile, baseline_cluster,
                           options, baseline);

  for (const std::uint32_t shard_count : {1u, 4u, 16u}) {
    for (const std::size_t pool_size : {1u, 2u, 8u}) {
      ScratchDir dir("exact_pgsk_s" + std::to_string(shard_count) + "_p" +
                     std::to_string(pool_size));
      ThreadPool pool(pool_size);
      ClusterSim cluster(four_cores(), pool);
      ShardStoreOptions store_options;
      store_options.directory = dir.str();
      store_options.shard_count = shard_count;
      store_options.pool = &pool;
      ShardStore store(store_options);
      (void)pgsk_generate_into(seed.graph, seed.profile, cluster, options,
                               store);

      const ShardStoreReader reader(dir.str());
      EXPECT_EQ(reader.to_property_graph(), baseline.graph())
          << shard_count << " shards, pool " << pool_size;
    }
  }
}

TEST(ShardStoreTest, ExactPgpbaRoundTripAcrossShardAndPoolCounts) {
  const SeedBundle seed = small_seed(300);
  const auto options = pgpba_exact_options(seed);

  ClusterSim baseline_cluster(four_cores());
  MemoryStore baseline;
  (void)pgpba_generate_into(seed.graph, seed.profile, baseline_cluster,
                            options, baseline);

  for (const std::uint32_t shard_count : {1u, 4u, 16u}) {
    for (const std::size_t pool_size : {1u, 2u, 8u}) {
      ScratchDir dir("exact_pgpba_s" + std::to_string(shard_count) + "_p" +
                     std::to_string(pool_size));
      ThreadPool pool(pool_size);
      ClusterSim cluster(four_cores(), pool);
      ShardStoreOptions store_options;
      store_options.directory = dir.str();
      store_options.shard_count = shard_count;
      store_options.pool = &pool;
      ShardStore store(store_options);
      (void)pgpba_generate_into(seed.graph, seed.profile, cluster, options,
                                store);

      const ShardStoreReader reader(dir.str());
      EXPECT_EQ(reader.to_property_graph(), baseline.graph())
          << shard_count << " shards, pool " << pool_size;
    }
  }
}

// Forcing the expand distinct to spill (the minimum 512 KB budget — 64K
// keys — against a couple hundred thousand placements) must not change a
// single output byte: the dedup stream is sorted-unique regardless of how
// many runs it passed through.
TEST(ShardStoreTest, ExactPgskSpillEngagedOutputUnchanged) {
  const SeedBundle seed = small_seed(300);
  PgskOptions options = pgsk_exact_options(seed);
  options.desired_edges = 400'000;

  ClusterSim in_ram_cluster(four_cores());
  MemoryStore in_ram;
  (void)pgsk_generate_into(seed.graph, seed.profile, in_ram_cluster, options,
                           in_ram);
  ASSERT_GT(in_ram.graph().num_edges(), 100'000u);

  ScratchDir spill("exact_pgsk_spill");
  PgskOptions tiny = options;
  tiny.dedup_budget_bytes = 1ULL << 19;
  tiny.spill_directory = spill.str();
  ThreadPool pool(8);
  ClusterSim spilled_cluster(four_cores(), pool);
  MemoryStore spilled;
  const std::uint64_t runs_before = MetricsRegistry::instance()
                                        .counter("store.distinct_spilled_runs")
                                        .value();
  (void)pgsk_generate_into(seed.graph, seed.profile, spilled_cluster, tiny,
                           spilled);
  EXPECT_GT(MetricsRegistry::instance()
                .counter("store.distinct_spilled_runs")
                .value(),
            runs_before)
      << "budget did not force a spill — the test is vacuous";
  EXPECT_EQ(spilled.graph(), in_ram.graph());
}

// ------------------------------------------------------------ ShardStore

TEST(ShardStoreTest, RoundTripMatchesMemoryAcrossShardAndPoolCounts) {
  const SeedBundle seed = small_seed();
  const auto pg_options = pgsk_options(seed);

  ClusterSim baseline_cluster(four_cores());
  MemoryStore baseline;
  (void)pgsk_fast_generate_into(seed.graph, seed.profile, baseline_cluster,
                                pg_options, FastSinkOptions{}, baseline);

  for (const std::uint32_t shard_count : {1u, 4u, 16u}) {
    for (const std::size_t pool_size : {1u, 2u, 8u}) {
      ScratchDir dir("roundtrip_s" + std::to_string(shard_count) + "_p" +
                     std::to_string(pool_size));
      ThreadPool pool(pool_size);
      ClusterSim cluster(four_cores(), pool);
      ShardStoreOptions store_options;
      store_options.directory = dir.str();
      store_options.shard_count = shard_count;
      store_options.pool = &pool;
      ShardStore store(store_options);
      (void)pgsk_fast_generate_into(seed.graph, seed.profile, cluster,
                                    pg_options, FastSinkOptions{}, store);

      const ShardStoreReader reader(dir.str());
      EXPECT_EQ(reader.manifest().shard_count, shard_count);
      EXPECT_EQ(reader.to_property_graph(), baseline.graph())
          << shard_count << " shards, pool " << pool_size;
    }
  }
}

TEST(ShardStoreTest, ShardBytesInvariantToPoolSize) {
  const SeedBundle seed = small_seed();
  const auto pg_options = pgpba_options(seed);

  std::vector<std::string> reference_bytes;
  for (const std::size_t pool_size : {1u, 2u, 8u}) {
    ScratchDir dir("bytes_p" + std::to_string(pool_size));
    ThreadPool pool(pool_size);
    ClusterSim cluster(four_cores(), pool);
    ShardStoreOptions store_options;
    store_options.directory = dir.str();
    store_options.shard_count = 4;
    store_options.pool = &pool;
    ShardStore store(store_options);
    (void)pgpba_fast_generate_into(seed.graph, seed.profile, cluster,
                                   pg_options, store);

    std::vector<std::string> bytes;
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      bytes.push_back(entry.path().filename().string() + ":" +
                      read_file_bytes(entry.path()));
    }
    std::sort(bytes.begin(), bytes.end());
    std::string all;
    for (const auto& b : bytes) all += b;
    reference_bytes.push_back(std::move(all));
  }
  ASSERT_EQ(reference_bytes.size(), 3u);
  EXPECT_EQ(reference_bytes[0], reference_bytes[1]);
  EXPECT_EQ(reference_bytes[0], reference_bytes[2]);
}

TEST(ShardStoreTest, ConcatenatedEdgeStreamInvariantToShardCount) {
  const SeedBundle seed = small_seed(300);
  const auto pg_options = pgpba_options(seed);

  std::vector<std::vector<VertexId>> streams;
  for (const std::uint32_t shard_count : {1u, 4u, 16u}) {
    ScratchDir dir("concat_s" + std::to_string(shard_count));
    ClusterSim cluster(four_cores());
    ShardStoreOptions store_options;
    store_options.directory = dir.str();
    store_options.shard_count = shard_count;
    ShardStore store(store_options);
    (void)pgpba_fast_generate_into(seed.graph, seed.profile, cluster,
                                   pg_options, store);

    const ShardStoreReader reader(dir.str());
    std::vector<VertexId> stream;
    reader.scan_edges([&](std::uint64_t first, std::span<const VertexId> src,
                          std::span<const VertexId> dst) {
      EXPECT_EQ(first, stream.size() / 2);
      for (std::size_t i = 0; i < src.size(); ++i) {
        stream.push_back(src[i]);
        stream.push_back(dst[i]);
      }
    });
    streams.push_back(std::move(stream));
  }
  ASSERT_EQ(streams.size(), 3u);
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
}

TEST(ShardStoreTest, CsrAndManifestByteIdenticalAcrossPoolsShardsBudgets) {
  // The tentpole contract: the parallel finish pipeline (counting, range
  // partition, budget-split scatter) must land byte-identical artifacts at
  // any pool size and any budget. csr.bin describes the whole graph, so it
  // must also be identical across shard counts; the manifest embeds the
  // shard layout, so its reference is per shard count.
  const SeedBundle seed = small_seed(300);
  const auto pg_options = pgpba_options(seed);

  std::string csr_reference;
  std::map<std::uint32_t, std::string> manifest_reference;
  for (const std::uint32_t shard_count : {1u, 4u, 16u}) {
    // 1 MiB is the budget floor: the scatter splits it across range tasks
    // and falls back to the per-task minimum, forcing many sub-buckets.
    for (const std::uint64_t budget : {1ULL << 20, 256ULL << 20}) {
      for (const std::size_t pool_size : {1u, 2u, 8u}) {
        const std::string tag = "matrix_s" + std::to_string(shard_count) +
                                "_b" + std::to_string(budget >> 20) + "_p" +
                                std::to_string(pool_size);
        ScratchDir dir(tag);
        ThreadPool pool(pool_size);
        ClusterSim cluster(four_cores(), pool);
        ShardStoreOptions store_options;
        store_options.directory = dir.str();
        store_options.shard_count = shard_count;
        store_options.memory_budget_bytes = budget;
        store_options.pool = &pool;
        ShardStore store(store_options);
        (void)pgpba_fast_generate_into(seed.graph, seed.profile, cluster,
                                       pg_options, store);

        const std::string csr = read_file_bytes(dir.path() / "csr.bin");
        const std::string manifest =
            read_file_bytes(dir.path() / "manifest.json");
        if (csr_reference.empty()) csr_reference = csr;
        EXPECT_EQ(csr, csr_reference) << tag;
        const auto [it, inserted] =
            manifest_reference.try_emplace(shard_count, manifest);
        EXPECT_EQ(manifest, it->second) << tag;
      }
    }
  }
}

TEST(ShardStoreTest, DedupStoreBytesInvariantToPoolSize) {
  // The dedup path routes every edge through ExternalDistinct, whose seal
  // now runs range-partitioned parallel merges on the cluster pool — the
  // stored bytes must not depend on the pool size or the merge partition
  // count at either budget extreme.
  const SeedBundle seed = small_seed(300);
  const auto pg_options = pgsk_options(seed);

  const auto run = [&](std::size_t pool_size, std::uint64_t budget,
                       const std::string& tag) {
    ScratchDir spill("dedup_spill_" + tag);
    ScratchDir dir("dedup_store_" + tag);
    ThreadPool pool(pool_size);
    ClusterSim cluster(four_cores(), pool);
    ShardStoreOptions store_options;
    store_options.directory = dir.str();
    store_options.shard_count = 4;
    store_options.pool = &pool;
    ShardStore store(store_options);
    FastSinkOptions sink;
    sink.dedup = true;
    sink.dedup_budget_bytes = budget;
    sink.spill_directory = spill.str();
    (void)pgsk_fast_generate_into(seed.graph, seed.profile, cluster,
                                  pg_options, sink, store);

    std::vector<std::string> bytes;
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      bytes.push_back(entry.path().filename().string() + ":" +
                      read_file_bytes(entry.path()));
    }
    std::sort(bytes.begin(), bytes.end());
    std::string all;
    for (const auto& b : bytes) all += b;
    return all;
  };

  for (const std::uint64_t budget : {1ULL << 19, 256ULL << 20}) {
    const std::string b = std::to_string(budget >> 19);
    const std::string reference = run(1, budget, "p1_b" + b);
    EXPECT_EQ(run(2, budget, "p2_b" + b), reference) << budget;
    EXPECT_EQ(run(8, budget, "p8_b" + b), reference) << budget;
  }
}

TEST(ShardStoreTest, CsrIndexMatchesInRamCsrView) {
  const SeedBundle seed = small_seed(300);
  const auto pg_options = pgsk_options(seed);

  ClusterSim c1(four_cores());
  MemoryStore memory;
  (void)pgsk_fast_generate_into(seed.graph, seed.profile, c1, pg_options,
                                FastSinkOptions{}, memory);

  ScratchDir dir("csr");
  ClusterSim c2(four_cores());
  ShardStoreOptions store_options;
  store_options.directory = dir.str();
  store_options.shard_count = 4;
  ShardStore store(store_options);
  (void)pgsk_fast_generate_into(seed.graph, seed.profile, c2, pg_options,
                                FastSinkOptions{}, store);

  const ShardStoreReader reader(dir.str());
  ASSERT_TRUE(reader.has_csr());
  const CsrIndexView& csr = reader.csr();
  const PropertyGraph& graph = memory.graph();
  const CsrView in_csr(graph, CsrDirection::kIn);
  const auto out_deg = out_degrees(graph);

  ASSERT_EQ(csr.num_vertices(), graph.num_vertices());
  ASSERT_EQ(csr.num_edges(), graph.num_edges());
  EXPECT_TRUE(std::equal(csr.out_degrees().begin(), csr.out_degrees().end(),
                         out_deg.begin(), out_deg.end()));
  EXPECT_TRUE(std::equal(csr.in_offsets().begin(), csr.in_offsets().end(),
                         in_csr.offsets().begin(), in_csr.offsets().end()));
  EXPECT_TRUE(std::equal(csr.in_neighbors().begin(), csr.in_neighbors().end(),
                         in_csr.all_neighbors().begin(),
                         in_csr.all_neighbors().end()));
}

TEST(ShardStoreTest, StreamedVeracityEqualsInRamVeracity) {
  const SeedBundle seed = small_seed(300);
  const auto pg_options = pgsk_options(seed);

  ClusterSim c1(four_cores());
  MemoryStore memory;
  (void)pgsk_fast_generate_into(seed.graph, seed.profile, c1, pg_options,
                                FastSinkOptions{}, memory);

  ScratchDir dir("veracity");
  ClusterSim c2(four_cores());
  ShardStoreOptions store_options;
  store_options.directory = dir.str();
  ShardStore store(store_options);
  (void)pgsk_fast_generate_into(seed.graph, seed.profile, c2, pg_options,
                                FastSinkOptions{}, store);

  const ShardStoreReader reader(dir.str());
  ThreadPool pool(4);
  // The CSR overloads share the exact degree / PageRank implementation with
  // the in-RAM ones, so the scores agree exactly, not approximately.
  const VeracityReport in_ram =
      evaluate_veracity(seed.graph, memory.graph(), pool);
  const VeracityReport streamed =
      evaluate_veracity(seed.graph, reader.csr(), pool);
  EXPECT_EQ(in_ram.degree_score, streamed.degree_score);
  EXPECT_EQ(in_ram.pagerank_score, streamed.pagerank_score);

  const StructuralKs ks =
      evaluate_structural_ks(memory.graph(), reader.csr(), pool);
  EXPECT_EQ(ks.degree_ks, 0.0);
  EXPECT_EQ(ks.pagerank_ks, 0.0);
}

TEST(ShardStoreTest, DedupPathDropsDuplicatesDeterministically) {
  const SeedBundle seed = small_seed(300);
  auto pg_options = pgsk_options(seed);

  const auto run = [&](std::uint64_t budget_bytes, const std::string& tag) {
    ScratchDir spill("spill_" + tag);
    ClusterSim cluster(four_cores());
    MemoryStore store;
    FastSinkOptions sink;
    sink.dedup = true;
    sink.dedup_budget_bytes = budget_bytes;
    sink.spill_directory = spill.str();
    (void)pgsk_fast_generate_into(seed.graph, seed.profile, cluster,
                                  pg_options, sink, store);
    return store.take_graph();
  };

  const PropertyGraph roomy = run(256ULL << 20, "roomy");
  const PropertyGraph tight = run(1ULL << 19, "tight");  // the minimum budget
  EXPECT_EQ(roomy, tight);

  // The dedup stream is the ascending sorted-unique placement set, each
  // placement expanded into its re-multiply copies consecutively — so the
  // per-edge key sequence must be non-decreasing in emission order.
  std::vector<std::uint64_t> keys;
  keys.reserve(roomy.num_edges());
  const auto srcs = roomy.sources();
  const auto dsts = roomy.destinations();
  for (EdgeId e = 0; e < roomy.num_edges(); ++e) {
    keys.push_back((static_cast<std::uint64_t>(srcs[e]) << 32) | dsts[e]);
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

// ------------------------------------------------------------ error paths

TEST(ShardStoreErrorTest, CorruptManifestNamesTheFile) {
  ScratchDir dir("corrupt_manifest");
  std::ofstream(dir.path() / "manifest.json") << "{ not json";
  try {
    const ShardStoreReader reader(dir.str());
    FAIL() << "expected CsbError";
  } catch (const CsbError& error) {
    EXPECT_NE(std::string(error.what()).find("manifest"), std::string::npos)
        << error.what();
  }
}

TEST(ShardStoreErrorTest, TruncatedShardNamesTheFile) {
  const SeedBundle seed = small_seed(300);
  ScratchDir dir("truncated");
  ClusterSim cluster(four_cores());
  ShardStoreOptions store_options;
  store_options.directory = dir.str();
  store_options.shard_count = 2;
  ShardStore store(store_options);
  (void)pgpba_fast_generate_into(seed.graph, seed.profile, cluster,
                                 pgpba_options(seed), store);

  const fs::path victim = dir.path() / "edges-0001.bin";
  fs::resize_file(victim, fs::file_size(victim) / 2);
  try {
    const ShardStoreReader reader(dir.str());
    FAIL() << "expected CsbError";
  } catch (const CsbError& error) {
    EXPECT_NE(std::string(error.what()).find("edges-0001.bin"),
              std::string::npos)
        << error.what();
  }
}

TEST(ShardStoreErrorTest, FlippedByteFailsChecksumNamingTheFile) {
  const SeedBundle seed = small_seed(300);
  ScratchDir dir("flipped");
  ClusterSim cluster(four_cores());
  ShardStoreOptions store_options;
  store_options.directory = dir.str();
  store_options.shard_count = 2;
  ShardStore store(store_options);
  (void)pgpba_fast_generate_into(seed.graph, seed.profile, cluster,
                                 pgpba_options(seed), store);

  // Flip one byte in the middle of shard 0's edge columns: sizes still
  // match, so only the checksum can catch it.
  const fs::path victim = dir.path() / "edges-0000.bin";
  {
    std::fstream file(victim,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(fs::file_size(victim) / 2));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(fs::file_size(victim) / 2));
    file.write(&byte, 1);
  }
  const ShardStoreReader reader(dir.str());
  try {
    reader.verify();
    FAIL() << "expected CsbError";
  } catch (const CsbError& error) {
    EXPECT_NE(std::string(error.what()).find("edges-0000.bin"),
              std::string::npos)
        << error.what();
  }
}

TEST(ShardStoreErrorTest, ParallelVerifyFlippedShardByteNamesTheFile) {
  const SeedBundle seed = small_seed(300);
  ScratchDir dir("par_flipped_shard");
  ClusterSim cluster(four_cores());
  ShardStoreOptions store_options;
  store_options.directory = dir.str();
  store_options.shard_count = 4;
  ShardStore store(store_options);
  (void)pgpba_fast_generate_into(seed.graph, seed.profile, cluster,
                                 pgpba_options(seed), store);

  const fs::path victim = dir.path() / "edges-0002.bin";
  {
    std::fstream file(victim,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(fs::file_size(victim) / 2));
    file.write("\x01", 1);
  }
  const ShardStoreReader reader(dir.str());
  ThreadPool pool(4);
  try {
    reader.verify(&pool);
    FAIL() << "expected CsbError";
  } catch (const CsbError& error) {
    // The fan-out rethrows the first failing shard's error, so the message
    // still names the offending file even under a pool.
    EXPECT_NE(std::string(error.what()).find("edges-0002.bin"),
              std::string::npos)
        << error.what();
  }
}

TEST(ShardStoreErrorTest, ParallelVerifyFlippedCsrByteNamesTheFile) {
  const SeedBundle seed = small_seed(300);
  ScratchDir dir("par_flipped_csr");
  ClusterSim cluster(four_cores());
  ShardStoreOptions store_options;
  store_options.directory = dir.str();
  store_options.shard_count = 2;
  ShardStore store(store_options);
  (void)pgpba_fast_generate_into(seed.graph, seed.profile, cluster,
                                 pgpba_options(seed), store);

  // Flip a byte in the neighbor section of csr.bin: the size and the shard
  // files stay valid, so only the parallel CSR word-sum pass can catch it.
  const fs::path victim = dir.path() / "csr.bin";
  {
    std::fstream file(victim,
                      std::ios::binary | std::ios::in | std::ios::out);
    const auto offset =
        static_cast<std::streamoff>(fs::file_size(victim) - 16);
    file.seekg(offset);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(offset);
    file.write(&byte, 1);
  }
  const ShardStoreReader reader(dir.str());
  ThreadPool pool(4);
  try {
    reader.verify(&pool);
    FAIL() << "expected CsbError";
  } catch (const CsbError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("csr.bin"), std::string::npos) << what;
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
  }
}

TEST(ShardStoreErrorTest, ParallelVerifyMatchesSerialOnIntactStore) {
  const SeedBundle seed = small_seed(300);
  ScratchDir dir("par_intact");
  ClusterSim cluster(four_cores());
  ShardStoreOptions store_options;
  store_options.directory = dir.str();
  store_options.shard_count = 4;
  ShardStore store(store_options);
  (void)pgpba_fast_generate_into(seed.graph, seed.profile, cluster,
                                 pgpba_options(seed), store);

  const ShardStoreReader reader(dir.str());
  EXPECT_NO_THROW(reader.verify());
  ThreadPool pool(8);
  EXPECT_NO_THROW(reader.verify(&pool));
}

// ------------------------------------------------------- ExternalDistinct

TEST(ExternalDistinctTest, MatchesSortUniqueAcrossBudgetsAndOrders) {
  std::mt19937_64 rng(99);
  std::vector<std::uint64_t> keys(300'000);
  for (auto& key : keys) key = rng() % 50'000;  // plenty of duplicates

  std::vector<std::uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());

  // 1 << 19 is the minimum budget (one IO chunk): 300k keys spill ~4 runs.
  for (const std::uint64_t budget : {1ULL << 30, 1ULL << 19}) {
    for (const bool shuffled : {false, true}) {
      ScratchDir dir("distinct_" + std::to_string(budget) +
                     (shuffled ? "_s" : "_o"));
      std::vector<std::uint64_t> input = keys;
      if (shuffled) {
        std::mt19937_64 shuffle_rng(7);
        std::shuffle(input.begin(), input.end(), shuffle_rng);
      }
      ExternalDistinctOptions options;
      options.spill_directory = dir.str();
      options.memory_budget_bytes = budget;
      ExternalDistinct distinct(options);
      // Feed in uneven chunks to exercise boundary handling.
      for (std::size_t i = 0; i < input.size();) {
        const std::size_t take = std::min<std::size_t>(777, input.size() - i);
        distinct.add(std::span(input).subspan(i, take));
        i += take;
      }
      EXPECT_EQ(distinct.seal(), expected.size());
      if (budget == (1ULL << 19)) {
        EXPECT_GT(distinct.spilled_runs(), 0u);
      }

      std::vector<std::uint64_t> got;
      distinct.scan([&](std::span<const std::uint64_t> chunk) {
        got.insert(got.end(), chunk.begin(), chunk.end());
      });
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(ExternalDistinctTest, RangePartitionedMergeMatchesSerialSortUnique) {
  // Full-width 64-bit keys so the R key-range partitions all carry load,
  // plus heavy duplication so every partition's merge actually drops keys.
  std::mt19937_64 rng(123);
  std::vector<std::uint64_t> keys;
  keys.reserve(300'000);
  for (std::size_t i = 0; i < 100'000; ++i) keys.push_back(rng());
  for (std::size_t i = 0; i < 200'000; ++i) {
    keys.push_back(keys[rng() % 100'000]);
  }

  std::vector<std::uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());

  for (const std::size_t pool_size : {1u, 2u, 8u}) {
    ScratchDir dir("distinct_pool_" + std::to_string(pool_size));
    ThreadPool pool(pool_size);
    ExternalDistinctOptions options;
    options.spill_directory = dir.str();
    options.memory_budget_bytes = 1ULL << 19;  // minimum: forces ~5 runs
    options.pool = &pool;
    ExternalDistinct distinct(options);
    for (std::size_t i = 0; i < keys.size();) {
      const std::size_t take = std::min<std::size_t>(777, keys.size() - i);
      distinct.add(std::span(keys).subspan(i, take));
      i += take;
    }
    EXPECT_EQ(distinct.seal(), expected.size());
    EXPECT_GT(distinct.spilled_runs(), 0u);
    // One part file per key range; the range count follows the pool size.
    EXPECT_EQ(distinct.merge_partitions(), pool_size);

    std::vector<std::uint64_t> got;
    distinct.scan([&](std::span<const std::uint64_t> chunk) {
      got.insert(got.end(), chunk.begin(), chunk.end());
    });
    EXPECT_EQ(got, expected) << "pool " << pool_size;
  }
}

// ------------------------------------------------------- format registry

TEST(GraphFormatTest, RegistryFindsBuiltinsAndRejectsUnknown) {
  EXPECT_NE(find_graph_format("binary"), nullptr);
  EXPECT_NE(find_graph_format("csv"), nullptr);
  EXPECT_NE(find_graph_format("graphml"), nullptr);
  EXPECT_NE(find_graph_format("shards"), nullptr);
  EXPECT_EQ(find_graph_format("carrier-pigeon"), nullptr);
  EXPECT_TRUE(require_graph_format("shards").is_directory_format());
  EXPECT_FALSE(require_graph_format("binary").is_directory_format());
  try {
    (void)require_graph_format("carrier-pigeon");
    FAIL() << "expected CsbError";
  } catch (const CsbError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("carrier-pigeon"), std::string::npos) << what;
    EXPECT_NE(what.find("binary"), std::string::npos) << what;
    EXPECT_NE(what.find("shards"), std::string::npos) << what;
  }
}

TEST(GraphFormatTest, ShardsFormatRoundTripsAGraph) {
  const SeedBundle seed = small_seed(300);
  ScratchDir dir("format_roundtrip");
  const std::string path = (dir.path() / "g.shards").string();
  const GraphFormat& format = require_graph_format("shards");
  format.save(seed.graph, path);
  EXPECT_EQ(format.load(path), seed.graph);
}

// ------------------------------------------------------- option descriptors

TEST(OptionSpecTest, CheckOptionValueValidatesByKind) {
  const OptionSpec u64_spec{"edges", OptionKind::kU64, "", ""};
  const OptionSpec dbl_spec{"noise", OptionKind::kDouble, "", ""};
  const OptionSpec flag_spec{"dedup", OptionKind::kFlag, "", ""};
  EXPECT_NO_THROW(check_option_value(u64_spec, "42"));
  EXPECT_NO_THROW(check_option_value(dbl_spec, "0.25"));
  EXPECT_NO_THROW(check_option_value(flag_spec, "whatever"));
  EXPECT_THROW(check_option_value(u64_spec, "4x2"), CsbError);
  EXPECT_THROW(check_option_value(dbl_spec, "fast"), CsbError);
}

TEST(OptionSpecTest, ValidateExtraOptionsNamesUnknownKey) {
  const Generator& generator = require_generator("pgsk-fast");
  GenConfig config;
  config.extra["nois"] = "0.1";  // typo
  try {
    validate_extra_options(generator.options(), config);
    FAIL() << "expected CsbError";
  } catch (const CsbError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("nois"), std::string::npos) << what;
    EXPECT_NE(what.find("noise"), std::string::npos) << what;
  }
}

TEST(OptionSpecTest, EveryRegisteredGeneratorPublishesWellFormedSpecs) {
  for (const Generator* generator : all_generators()) {
    for (const OptionSpec& spec : generator->options()) {
      EXPECT_FALSE(spec.name.empty()) << generator->name();
      EXPECT_FALSE(spec.help.empty())
          << generator->name() << " --" << spec.name;
      if (!spec.default_value.empty()) {
        EXPECT_NO_THROW(check_option_value(spec, spec.default_value))
            << generator->name() << " --" << spec.name;
      }
    }
  }
}

}  // namespace
}  // namespace csb
