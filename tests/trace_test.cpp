// Unit and property tests for src/trace: session normalization/lowering
// invariants, the benign traffic model, and the attack injectors' shapes.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "trace/attacks.hpp"
#include "trace/session.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"

namespace csb {
namespace {

// ----------------------------------------------------------- normalization

struct NormalizeCase {
  Protocol protocol;
  ConnState state;
  std::uint64_t out_bytes;
  std::uint64_t in_bytes;
  std::uint32_t out_pkts;
  std::uint32_t in_pkts;
};

class NormalizeTest : public ::testing::TestWithParam<NormalizeCase> {};

TEST_P(NormalizeTest, ProducesConsistentSpec) {
  const auto& c = GetParam();
  SessionSpec spec;
  spec.client_ip = 1;
  spec.server_ip = 2;
  spec.protocol = c.protocol;
  spec.client_port = 1234;
  spec.server_port = 80;
  spec.duration_ms = 100;
  spec.out_bytes = c.out_bytes;
  spec.in_bytes = c.in_bytes;
  spec.out_pkts = c.out_pkts;
  spec.in_pkts = c.in_pkts;
  spec.state = c.state;
  normalize_session(spec);

  // to_netflow must agree with the spec exactly — that is the definition of
  // a normalized spec.
  const NetflowRecord rec = to_netflow(spec);
  EXPECT_EQ(rec.out_bytes, spec.out_bytes);
  EXPECT_EQ(rec.in_bytes, spec.in_bytes);
  EXPECT_EQ(rec.out_pkts, spec.out_pkts);
  EXPECT_EQ(rec.in_pkts, spec.in_pkts);

  // Packets must expand to the same counts.
  const auto packets = to_packets(spec);
  EXPECT_EQ(packets.size(), spec.out_pkts + spec.in_pkts);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NormalizeTest,
    ::testing::Values(
        NormalizeCase{Protocol::kTcp, ConnState::kSF, 5000, 20000, 10, 20},
        NormalizeCase{Protocol::kTcp, ConnState::kSF, 0, 0, 0, 0},
        NormalizeCase{Protocol::kTcp, ConnState::kS0, 100, 999, 2, 7},
        NormalizeCase{Protocol::kTcp, ConnState::kRej, 0, 0, 3, 3},
        NormalizeCase{Protocol::kTcp, ConnState::kS1, 100000, 2000000, 0, 0},
        NormalizeCase{Protocol::kTcp, ConnState::kRsto, 800, 800, 5, 2},
        NormalizeCase{Protocol::kTcp, ConnState::kRstr, 800, 800, 5, 5},
        NormalizeCase{Protocol::kTcp, ConnState::kOth, 1500, 0, 1, 0},
        NormalizeCase{Protocol::kUdp, ConnState::kNone, 4200, 0, 3, 0},
        NormalizeCase{Protocol::kUdp, ConnState::kNone, 0, 0, 0, 0},
        NormalizeCase{Protocol::kIcmp, ConnState::kNone, 640, 640, 4, 4}));

TEST(NormalizeTest, GrowsPacketsWhenPayloadExceedsCapacity) {
  SessionSpec spec;
  spec.client_ip = 1;
  spec.server_ip = 2;
  spec.protocol = Protocol::kUdp;
  spec.out_bytes = 100 * kMaxPayload;  // cannot fit in 2 packets
  spec.out_pkts = 2;
  normalize_session(spec);
  EXPECT_GE(spec.out_pkts, 100u);
  EXPECT_EQ(to_netflow(spec).out_bytes, spec.out_bytes);
}

TEST(NormalizeTest, S0HasNoResponderTraffic) {
  SessionSpec spec;
  spec.client_ip = 1;
  spec.server_ip = 2;
  spec.protocol = Protocol::kTcp;
  spec.state = ConnState::kS0;
  spec.in_bytes = 5000;
  spec.in_pkts = 10;
  normalize_session(spec);
  EXPECT_EQ(spec.in_bytes, 0u);
  EXPECT_EQ(spec.in_pkts, 0u);
}

TEST(NormalizeTest, SinglePacketFlowHasZeroDuration) {
  SessionSpec spec;
  spec.client_ip = 1;
  spec.server_ip = 2;
  spec.protocol = Protocol::kTcp;
  spec.state = ConnState::kS0;
  spec.out_pkts = 1;
  spec.duration_ms = 5000;
  normalize_session(spec);
  EXPECT_EQ(spec.duration_ms, 0u);
}

TEST(NormalizeTest, TcpWithoutStateThrows) {
  SessionSpec spec;
  spec.protocol = Protocol::kTcp;
  spec.state = ConnState::kNone;
  EXPECT_THROW(normalize_session(spec), CsbError);
}

class RandomSessionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSessionSweep, NormalizeThenLowerIsAlwaysConsistent) {
  // Property test: for random budgets across all protocols and states,
  // normalize_session must make to_netflow and to_packets agree exactly.
  Rng rng(GetParam());
  constexpr ConnState kTcpStates[] = {
      ConnState::kSF,   ConnState::kS1,   ConnState::kS0, ConnState::kRej,
      ConnState::kRsto, ConnState::kRstr, ConnState::kOth};
  for (int i = 0; i < 200; ++i) {
    SessionSpec spec;
    spec.client_ip = 1 + static_cast<std::uint32_t>(rng.uniform(1000));
    spec.server_ip = 2000 + static_cast<std::uint32_t>(rng.uniform(1000));
    const int proto = static_cast<int>(rng.uniform(3));
    spec.protocol = proto == 0   ? Protocol::kTcp
                    : proto == 1 ? Protocol::kUdp
                                 : Protocol::kIcmp;
    spec.client_port = static_cast<std::uint16_t>(rng.uniform(65536));
    spec.server_port = static_cast<std::uint16_t>(rng.uniform(65536));
    spec.start_us = rng.uniform(1ULL << 40);
    spec.duration_ms = static_cast<std::uint32_t>(rng.uniform(100000));
    spec.out_bytes = rng.uniform(1 << 22);
    spec.in_bytes = rng.uniform(1 << 22);
    spec.out_pkts = static_cast<std::uint32_t>(rng.uniform(2000));
    spec.in_pkts = static_cast<std::uint32_t>(rng.uniform(2000));
    spec.state = spec.protocol == Protocol::kTcp
                     ? kTcpStates[rng.uniform(std::size(kTcpStates))]
                     : ConnState::kNone;
    normalize_session(spec);

    const NetflowRecord rec = to_netflow(spec);  // throws if inconsistent
    const auto packets = to_packets(spec);
    ASSERT_EQ(packets.size(), spec.out_pkts + spec.in_pkts);
    std::uint64_t wire_total = 0;
    for (const auto& packet : packets) wire_total += packet.orig_len;
    EXPECT_EQ(wire_total, rec.out_bytes + rec.in_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSessionSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ToPacketsTest, RequiresNormalizedSpec) {
  SessionSpec spec;
  spec.client_ip = 1;
  spec.server_ip = 2;
  spec.protocol = Protocol::kTcp;
  spec.state = ConnState::kSF;
  spec.out_pkts = 1;  // below the SF minimum of 3
  EXPECT_THROW(to_packets(spec), CsbError);
}

TEST(ToPacketsTest, TimestampsSpanDuration) {
  SessionSpec spec;
  spec.client_ip = 1;
  spec.server_ip = 2;
  spec.protocol = Protocol::kUdp;
  spec.start_us = 10'000'000;
  spec.duration_ms = 500;
  spec.out_pkts = 10;
  normalize_session(spec);
  const auto packets = to_packets(spec);
  EXPECT_EQ(packets.front().timestamp_us, spec.start_us);
  EXPECT_EQ(packets.back().timestamp_us, spec.start_us + 500'000);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_GE(packets[i].timestamp_us, packets[i - 1].timestamp_us);
  }
}

// ------------------------------------------------------------ traffic model

TEST(TrafficModelTest, GeneratesRequestedSessionCount) {
  TrafficModelConfig config;
  config.benign_sessions = 500;
  const TrafficModel model(config);
  const auto sessions = model.generate_benign();
  EXPECT_EQ(sessions.size(), 500u);
}

TEST(TrafficModelTest, SessionsAreSortedAndLabeledBenign) {
  TrafficModelConfig config;
  config.benign_sessions = 300;
  const auto sessions = TrafficModel(config).generate_benign();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(sessions[i].start_us, sessions[i - 1].start_us);
    }
    EXPECT_EQ(sessions[i].label, TrafficLabel::kBenign);
  }
}

TEST(TrafficModelTest, HostsStayInConfiguredRanges) {
  TrafficModelConfig config;
  config.benign_sessions = 400;
  const TrafficModel model(config);
  const auto sessions = model.generate_benign();
  for (const auto& s : sessions) {
    EXPECT_GE(s.client_ip, model.client_ip(0));
    EXPECT_LE(s.client_ip, model.client_ip(config.client_hosts - 1));
    EXPECT_GE(s.server_ip, model.server_ip(0));
    EXPECT_LE(s.server_ip, model.server_ip(config.server_hosts - 1));
  }
}

TEST(TrafficModelTest, DeterministicPerSeed) {
  TrafficModelConfig config;
  config.benign_sessions = 100;
  const auto a = TrafficModel(config).generate_benign();
  const auto b = TrafficModel(config).generate_benign();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client_ip, b[i].client_ip);
    EXPECT_EQ(a[i].out_bytes, b[i].out_bytes);
  }
  config.seed = 43;
  const auto c = TrafficModel(config).generate_benign();
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].client_ip != c[i].client_ip ||
                a[i].out_bytes != c[i].out_bytes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TrafficModelTest, ServerPopularityIsSkewed) {
  TrafficModelConfig config;
  config.benign_sessions = 5000;
  config.server_hosts = 40;
  const auto sessions = TrafficModel(config).generate_benign();
  std::unordered_map<std::uint32_t, int> hits;
  for (const auto& s : sessions) ++hits[s.server_ip];
  int max_hits = 0;
  for (const auto& [ip, n] : hits) max_hits = std::max(max_hits, n);
  // Zipf(1.1) over 40 servers: the hottest server draws >> 1/40 of traffic.
  EXPECT_GT(max_hits, 5000 / 40 * 3);
}

TEST(TrafficModelTest, MixesProtocols) {
  TrafficModelConfig config;
  config.benign_sessions = 2000;
  const auto sessions = TrafficModel(config).generate_benign();
  std::set<Protocol> seen;
  for (const auto& s : sessions) seen.insert(s.protocol);
  EXPECT_EQ(seen.size(), 3u);  // TCP, UDP, ICMP all present
}

TEST(SessionsToNetflowTest, ConvertsAndSorts) {
  TrafficModelConfig config;
  config.benign_sessions = 50;
  auto sessions = TrafficModel(config).generate_benign();
  const auto records = sessions_to_netflow(sessions);
  ASSERT_EQ(records.size(), 50u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].first_us, records[i - 1].first_us);
  }
}

TEST(SessionsToPacketsTest, GloballyOrdered) {
  TrafficModelConfig config;
  config.benign_sessions = 20;
  const auto sessions = TrafficModel(config).generate_benign();
  const auto packets = sessions_to_packets(sessions);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_GE(packets[i].timestamp_us, packets[i - 1].timestamp_us);
  }
}

// ---------------------------------------------------------------- attacks

TEST(SynFloodTest, ShapeMatchesSignature) {
  SynFloodConfig config;
  config.victim_ip = 0x0a000010;
  config.flows = 500;
  Rng rng(1);
  const auto sessions = inject_syn_flood(config, rng);
  ASSERT_EQ(sessions.size(), 500u);
  std::unordered_set<std::uint32_t> distinct_clients;
  for (const auto& s : sessions) {
    EXPECT_EQ(s.server_ip, config.victim_ip);
    EXPECT_EQ(s.server_port, config.victim_port);
    EXPECT_EQ(s.state, ConnState::kS0);
    EXPECT_EQ(s.in_pkts, 0u);
    EXPECT_LE(s.out_pkts, 4u);
    EXPECT_EQ(s.label, TrafficLabel::kSynFlood);
    distinct_clients.insert(s.client_ip);
  }
  EXPECT_GT(distinct_clients.size(), 200u);  // many spoofed sources
}

TEST(HostScanTest, CoversAllPortsOfOneHost) {
  HostScanConfig config;
  config.scanner_ip = 1;
  config.target_ip = 2;
  config.first_port = 100;
  config.port_count = 300;
  Rng rng(2);
  const auto sessions = inject_host_scan(config, rng);
  ASSERT_EQ(sessions.size(), 300u);
  std::set<std::uint16_t> ports;
  for (const auto& s : sessions) {
    EXPECT_EQ(s.client_ip, 1u);
    EXPECT_EQ(s.server_ip, 2u);
    EXPECT_EQ(s.label, TrafficLabel::kHostScan);
    EXPECT_TRUE(s.state == ConnState::kRej || s.state == ConnState::kS1);
    ports.insert(s.server_port);
  }
  EXPECT_EQ(ports.size(), 300u);
  EXPECT_EQ(*ports.begin(), 100u);
}

TEST(NetworkScanTest, CoversManyHostsOnePort) {
  NetworkScanConfig config;
  config.scanner_ip = 9;
  config.subnet_base = 0x0a010000;
  config.host_count = 200;
  Rng rng(3);
  const auto sessions = inject_network_scan(config, rng);
  ASSERT_EQ(sessions.size(), 200u);
  std::set<std::uint32_t> targets;
  for (const auto& s : sessions) {
    EXPECT_EQ(s.server_port, config.port);
    EXPECT_EQ(s.label, TrafficLabel::kNetworkScan);
    targets.insert(s.server_ip);
  }
  EXPECT_EQ(targets.size(), 200u);
}

TEST(UdpFloodTest, HighVolumeAtVictim) {
  UdpFloodConfig config;
  config.attacker_ip = 5;
  config.victim_ip = 6;
  config.flows = 50;
  Rng rng(4);
  const auto sessions = inject_udp_flood(config, rng);
  std::uint64_t total_pkts = 0;
  for (const auto& s : sessions) {
    EXPECT_EQ(s.protocol, Protocol::kUdp);
    EXPECT_EQ(s.server_ip, 6u);
    EXPECT_EQ(s.label, TrafficLabel::kUdpFlood);
    total_pkts += s.out_pkts;
  }
  EXPECT_GT(total_pkts, 50u * config.pkts_per_flow / 2);
}

TEST(IcmpFloodTest, IcmpOnly) {
  IcmpFloodConfig config;
  config.attacker_ip = 5;
  config.victim_ip = 6;
  Rng rng(5);
  for (const auto& s : inject_icmp_flood(config, rng)) {
    EXPECT_EQ(s.protocol, Protocol::kIcmp);
    EXPECT_EQ(s.label, TrafficLabel::kIcmpFlood);
  }
}

TEST(DdosTest, ManyDistinctBots) {
  DdosConfig config;
  config.victim_ip = 7;
  config.bot_count = 100;
  config.flows_per_bot = 4;
  Rng rng(6);
  const auto sessions = inject_ddos(config, rng);
  EXPECT_EQ(sessions.size(), 400u);
  std::unordered_set<std::uint32_t> bots;
  for (const auto& s : sessions) {
    EXPECT_EQ(s.server_ip, 7u);
    EXPECT_EQ(s.label, TrafficLabel::kDdos);
    bots.insert(s.client_ip);
  }
  EXPECT_EQ(bots.size(), 100u);
}

TEST(ReflectionTest, SmurfIsIcmpFromManyReflectors) {
  ReflectionConfig config;
  config.victim_ip = 11;
  config.reflectors = 200;
  config.flows_per_reflector = 3;
  Rng rng(7);
  const auto sessions = inject_reflection(config, rng);
  ASSERT_EQ(sessions.size(), 600u);
  std::unordered_set<std::uint32_t> reflectors;
  for (const auto& s : sessions) {
    EXPECT_EQ(s.protocol, Protocol::kIcmp);
    EXPECT_EQ(s.server_ip, 11u);
    EXPECT_EQ(s.in_pkts, 0u);
    EXPECT_EQ(s.label, TrafficLabel::kReflection);
    reflectors.insert(s.client_ip);
  }
  EXPECT_EQ(reflectors.size(), 200u);
}

TEST(ReflectionTest, FraggleUsesUdpEchoService) {
  ReflectionConfig config;
  config.victim_ip = 12;
  config.protocol = Protocol::kUdp;
  config.reflectors = 50;
  Rng rng(8);
  for (const auto& s : inject_reflection(config, rng)) {
    EXPECT_EQ(s.protocol, Protocol::kUdp);
    EXPECT_EQ(s.client_port, 7u);  // echo
  }
}

TEST(ReflectionTest, RejectsTcp) {
  ReflectionConfig config;
  config.protocol = Protocol::kTcp;
  Rng rng(9);
  EXPECT_THROW(inject_reflection(config, rng), CsbError);
}

TEST(AttackTest, InjectorsRejectEmptyConfigs) {
  Rng rng(1);
  SynFloodConfig syn;
  syn.flows = 0;
  EXPECT_THROW(inject_syn_flood(syn, rng), CsbError);
  HostScanConfig scan;
  scan.port_count = 0;
  EXPECT_THROW(inject_host_scan(scan, rng), CsbError);
  DdosConfig ddos;
  ddos.bot_count = 0;
  EXPECT_THROW(inject_ddos(ddos, rng), CsbError);
}

}  // namespace
}  // namespace csb
