// Unit tests for src/util: RNG, thread pool, parallel_for, formatting,
// hashing, error macros.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/flat_set.hpp"
#include "util/format.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace csb {
namespace {

// ---------------------------------------------------------------- random

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng c1 = parent.fork(0);
  Rng c2 = parent.fork(1);
  Rng c1_again = Rng(7).fork(0);
  EXPECT_EQ(c1(), c1_again());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1() == c2()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng a(9);
  Rng b(9);
  (void)a.fork(5);
  EXPECT_EQ(a(), b());
}

class RngUniformBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformBoundTest, StaysBelowBound) {
  const std::uint64_t bound = GetParam();
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.uniform(bound), bound);
}

TEST_P(RngUniformBoundTest, HitsAllSmallValues) {
  const std::uint64_t bound = GetParam();
  if (bound > 64) GTEST_SKIP() << "coverage check only for small bounds";
  Rng rng(43);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.uniform(bound));
  EXPECT_EQ(seen.size(), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformBoundTest,
                         ::testing::Values(1, 2, 3, 7, 10, 64, 1000,
                                           1ULL << 32, (1ULL << 63) + 5));

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t x = rng.uniform_range(-3, 3);
    ASSERT_GE(x, -3);
    ASSERT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

class RngBernoulliTest : public ::testing::TestWithParam<double> {};

TEST_P(RngBernoulliTest, MatchesRate) {
  const double p = GetParam();
  Rng rng(77);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Rates, RngBernoulliTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

TEST(SplitMixTest, ProducesDistinctSequence) {
  std::uint64_t state = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(state));
  EXPECT_EQ(seen.size(), 1000u);
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw CsbError("boom"); });
  EXPECT_THROW(f.get(), CsbError);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SizeIsAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

// ------------------------------------------------------------- parallel

class MakeChunksTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(MakeChunksTest, CoversRangeExactlyOnce) {
  const auto [n, workers] = GetParam();
  const auto chunks = make_chunks(0, n, workers, 1);
  std::size_t covered = 0;
  std::size_t expect_begin = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, expect_begin);
    EXPECT_LT(c.begin, c.end);
    covered += c.end - c.begin;
    expect_begin = c.end;
  }
  EXPECT_EQ(covered, n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MakeChunksTest,
    ::testing::Combine(::testing::Values(1, 2, 10, 1000, 12345),
                       ::testing::Values(1, 2, 8, 64)));

TEST(MakeChunksTest, EmptyRangeYieldsNoChunks) {
  EXPECT_TRUE(make_chunks(5, 5, 4, 1).empty());
  EXPECT_TRUE(make_chunks(7, 3, 4, 1).empty());
}

TEST(MakeChunksTest, RespectsGrain) {
  const auto chunks = make_chunks(0, 100, 16, 50);
  for (const auto& c : chunks) {
    // All chunks but the last must be >= grain.
    if (c.end != 100) {
      EXPECT_GE(c.end - c.begin, 50u);
    }
  }
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(5000);
  parallel_for(pool, 0, visits.size(), 16,
               [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, PropagatesBodyExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100, 1,
                            [](std::size_t i) {
                              if (i == 50) throw CsbError("bad index");
                            }),
               CsbError);
}

TEST(ParallelForTest, ChunkIndicesAreSequential) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::size_t> indices;
  parallel_for_chunks(pool, 0, 1000, 10, [&](const ChunkRange& c) {
    std::lock_guard<std::mutex> lock(mu);
    indices.insert(c.chunk_index);
  });
  ASSERT_FALSE(indices.empty());
  EXPECT_EQ(*indices.begin(), 0u);
  EXPECT_EQ(*indices.rbegin(), indices.size() - 1);
}

// -------------------------------------------------------------- format

struct CommaCase {
  std::uint64_t value;
  const char* expected;
};

class WithCommasTest : public ::testing::TestWithParam<CommaCase> {};

TEST_P(WithCommasTest, Formats) {
  EXPECT_EQ(with_commas(GetParam().value), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WithCommasTest,
    ::testing::Values(CommaCase{0, "0"}, CommaCase{5, "5"},
                      CommaCase{999, "999"}, CommaCase{1000, "1,000"},
                      CommaCase{123456, "123,456"},
                      CommaCase{1234567, "1,234,567"},
                      CommaCase{1000000000ULL, "1,000,000,000"}));

TEST(FormatTest, HumanBytes) {
  EXPECT_EQ(human_bytes(0), "0 B");
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(human_bytes(1ULL << 20), "1.00 MiB");
  EXPECT_EQ(human_bytes(3ULL << 30), "3.00 GiB");
}

TEST(FormatTest, HumanSeconds) {
  EXPECT_EQ(human_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(human_seconds(0.005), "5.0 ms");
  EXPECT_EQ(human_seconds(1.5), "1.50 s");
  EXPECT_EQ(human_seconds(90.0), "1m 30.0s");
}

TEST(FormatTest, Sci) {
  EXPECT_EQ(sci(12345.0, 3), "1.23e+04");
  EXPECT_EQ(sci(0.000123, 2), "1.2e-04");
}

// ---------------------------------------------------------------- hash

TEST(HashTest, Mix64IsInjectiveOnSample) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(HashTest, PairHashIsOrderSensitive) {
  EXPECT_NE(hash_pair(1, 2), hash_pair(2, 1));
}

TEST(HashTest, PairHashHasFewCollisionsOnGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t u = 0; u < 100; ++u) {
    for (std::uint64_t v = 0; v < 100; ++v) seen.insert(hash_pair(u, v));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

// ------------------------------------------------------------ flat set

TEST(FlatSetTest, InsertReportsNewness) {
  FlatSet64 set;
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));
  EXPECT_TRUE(set.insert(43));
  EXPECT_EQ(set.size(), 2u);
}

TEST(FlatSetTest, ContainsTracksInserts) {
  FlatSet64 set;
  for (std::uint64_t i = 1; i <= 100; ++i) set.insert(i * 7919);
  for (std::uint64_t i = 1; i <= 100; ++i) {
    EXPECT_TRUE(set.contains(i * 7919));
    EXPECT_FALSE(set.contains(i * 7919 + 1));
  }
}

TEST(FlatSetTest, ZeroKeyIsStorable) {
  // 0 is the internal empty-slot sentinel; it must still behave as a key.
  FlatSet64 set;
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  EXPECT_EQ(set.size(), 1u);
  set.clear();
  EXPECT_FALSE(set.contains(0));
}

TEST(FlatSetTest, GrowsPastInitialCapacityWithoutLoss) {
  FlatSet64 set;  // default capacity: growth exercises every rehash
  constexpr std::uint64_t kKeys = 100'000;
  Rng rng(99);
  std::set<std::uint64_t> reference;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const std::uint64_t key = rng.uniform(1'000'000);
    EXPECT_EQ(set.insert(key), reference.insert(key).second);
  }
  EXPECT_EQ(set.size(), reference.size());
  for (const std::uint64_t key : reference) EXPECT_TRUE(set.contains(key));
}

TEST(FlatSetTest, ReserveAvoidsRehash) {
  FlatSet64 set(1000);
  const std::size_t capacity = set.capacity();
  for (std::uint64_t i = 1; i <= 1000; ++i) set.insert(i);
  EXPECT_EQ(set.capacity(), capacity);  // no growth during expected inserts
  EXPECT_EQ(set.size(), 1000u);
}

// --------------------------------------------------------------- error

TEST(ErrorTest, CheckThrowsWithLocation) {
  try {
    CSB_CHECK(1 == 2);
    FAIL() << "expected CsbError";
  } catch (const CsbError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorTest, CheckMsgIncludesMessage) {
  try {
    CSB_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected CsbError";
  } catch (const CsbError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(CSB_CHECK(true));
  EXPECT_NO_THROW(CSB_CHECK_MSG(1 + 1 == 2, "fine"));
}

// ------------------------------------------------------------- stopwatch

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.millis(), 15.0);
  sw.restart();
  EXPECT_LT(sw.millis(), 15.0);
}

}  // namespace
}  // namespace csb
