// Unit tests for src/veracity: normalization, the §V-A veracity score, and
// the key paper trend — scores shrink as the synthetic graph grows.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/fast_samplers.hpp"
#include "gen/pgpba.hpp"
#include "gen/pgsk.hpp"
#include "graph/pagerank.hpp"
#include "seed/seed.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"
#include "veracity/attributes.hpp"
#include "veracity/veracity.hpp"

namespace csb {
namespace {

SeedBundle make_seed() {
  TrafficModelConfig config;
  config.benign_sessions = 1200;
  config.client_hosts = 150;
  config.server_hosts = 40;
  return build_seed_from_netflow(
      sessions_to_netflow(TrafficModel(config).generate_benign()));
}

TEST(NormalizedDistributionTest, DegreeSumsToOne) {
  const SeedBundle seed = make_seed();
  const auto normalized = normalized_degree_distribution(seed.graph);
  double sum = 0.0;
  for (const double v : normalized) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(NormalizedDistributionTest, PagerankSumsToOne) {
  const SeedBundle seed = make_seed();
  ThreadPool pool(2);
  const auto normalized = normalized_pagerank_distribution(seed.graph, pool);
  double sum = 0.0;
  for (const double v : normalized) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

// PageRank's dangling-mass and convergence-delta reductions merge per-chunk
// partials in chunk-index order, so every score (and every veracity score
// built on one) is bit-identical at any pool size — not merely close.
TEST(NormalizedDistributionTest, PagerankBitIdenticalAcrossPoolSizes) {
  const SeedBundle seed = make_seed();
  ThreadPool serial(1);
  const PageRankResult baseline = pagerank(seed.graph, serial);
  ASSERT_FALSE(baseline.scores.empty());

  ThreadPool wide(8);
  const PageRankResult parallel_run = pagerank(seed.graph, wide);
  ASSERT_EQ(parallel_run.scores.size(), baseline.scores.size());
  EXPECT_EQ(parallel_run.iterations, baseline.iterations);
  EXPECT_EQ(parallel_run.final_delta, baseline.final_delta);
  for (std::size_t v = 0; v < baseline.scores.size(); ++v) {
    ASSERT_EQ(parallel_run.scores[v], baseline.scores[v]) << "vertex " << v;
  }

  const PageRankResult weighted_base =
      pagerank_by_traffic(seed.graph, serial);
  const PageRankResult weighted_wide = pagerank_by_traffic(seed.graph, wide);
  ASSERT_EQ(weighted_wide.scores.size(), weighted_base.scores.size());
  EXPECT_EQ(weighted_wide.final_delta, weighted_base.final_delta);
  for (std::size_t v = 0; v < weighted_base.scores.size(); ++v) {
    ASSERT_EQ(weighted_wide.scores[v], weighted_base.scores[v])
        << "vertex " << v;
  }
}

TEST(VeracityScoreTest, IdenticalGraphScoresZero) {
  const SeedBundle seed = make_seed();
  ThreadPool pool(2);
  const VeracityReport report =
      evaluate_veracity(seed.graph, seed.graph, pool);
  EXPECT_DOUBLE_EQ(report.degree_score, 0.0);
  EXPECT_DOUBLE_EQ(report.pagerank_score, 0.0);
}

TEST(VeracityScoreTest, LowerForStructurallySimilarGraph) {
  // A PGPBA clone of the seed must score far better than an Erdős-Rényi
  // graph of the same size (which has no degree skew at all).
  const SeedBundle seed = make_seed();
  ThreadPool pool(2);
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  PgpbaOptions options;
  options.desired_edges = 2 * seed.graph.num_edges();
  options.with_properties = false;
  // Degree-sampling mode reproduces the seed's degree shape directly
  // (spark-parity mode adds degree-1 vertices only).
  options.mode = PgpbaAttachMode::kDegreeSampling;
  const GenResult pgpba =
      pgpba_generate(seed.graph, seed.profile, cluster, options);

  PropertyGraph uniform(pgpba.graph.num_vertices());
  Rng rng(5);
  for (std::uint64_t e = 0; e < pgpba.graph.num_edges(); ++e) {
    uniform.add_edge(rng.uniform(uniform.num_vertices()),
                     rng.uniform(uniform.num_vertices()));
  }

  const double score_pgpba =
      veracity_score(normalized_degree_distribution(seed.graph),
                     normalized_degree_distribution(pgpba.graph));
  const double score_uniform =
      veracity_score(normalized_degree_distribution(seed.graph),
                     normalized_degree_distribution(uniform));
  EXPECT_LT(score_pgpba, score_uniform);
}

TEST(VeracityTrendTest, ScoreDecreasesWithSyntheticSize) {
  // The central Fig. 6 trend: growing the synthetic graph shrinks the
  // veracity score (normalized values scale down with size).
  const SeedBundle seed = make_seed();
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  double previous = 1e9;
  for (const std::uint64_t factor : {2, 8, 32}) {
    PgpbaOptions options;
    options.desired_edges = factor * seed.graph.num_edges();
    options.fraction = 1.0;
    options.with_properties = false;
    const GenResult result =
        pgpba_generate(seed.graph, seed.profile, cluster, options);
    const double score =
        veracity_score(normalized_degree_distribution(seed.graph),
                       normalized_degree_distribution(result.graph));
    EXPECT_LT(score, previous) << "factor " << factor;
    previous = score;
  }
}

TEST(VeracityScoreTest, PgskScoresAreFinite) {
  const SeedBundle seed = make_seed();
  ThreadPool pool(2);
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  PgskOptions options;
  options.desired_edges = seed.graph.num_edges();
  options.fit.gradient_iterations = 8;
  options.fit.swaps_per_iteration = 200;
  options.fit.burn_in_swaps = 500;
  const GenResult result =
      pgsk_generate(seed.graph, seed.profile, cluster, options);
  const VeracityReport report =
      evaluate_veracity(seed.graph, result.graph, pool);
  EXPECT_TRUE(std::isfinite(report.degree_score));
  EXPECT_TRUE(std::isfinite(report.pagerank_score));
  EXPECT_GT(report.degree_score, 0.0);
}

TEST(DegreeSeriesTest, FractionsSumToAtMostOne) {
  const SeedBundle seed = make_seed();
  const auto series = degree_distribution_series(seed.graph);
  ASSERT_FALSE(series.empty());
  double total = 0.0;
  for (const auto& point : series) {
    EXPECT_GT(point.normalized_degree, 0.0);
    EXPECT_GT(point.vertex_fraction, 0.0);
    total += point.vertex_fraction;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST(DegreeSeriesTest, LargerGraphShiftsDownLeft) {
  // Fig. 5: the synthetic curves sit orders of magnitude down-left of the
  // seed because of normalization.
  const SeedBundle seed = make_seed();
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  PgpbaOptions options;
  options.desired_edges = 30 * seed.graph.num_edges();
  options.fraction = 1.0;
  options.with_properties = false;
  const GenResult result =
      pgpba_generate(seed.graph, seed.profile, cluster, options);
  const auto seed_series = degree_distribution_series(seed.graph);
  const auto synth_series = degree_distribution_series(result.graph);
  ASSERT_FALSE(seed_series.empty());
  ASSERT_FALSE(synth_series.empty());
  // Compare the location of the first (smallest-degree) points.
  EXPECT_LT(synth_series.front().normalized_degree,
            seed_series.front().normalized_degree);
}

TEST(DegreeSeriesTest, EmptyGraphGivesEmptySeries) {
  PropertyGraph g(5);
  EXPECT_TRUE(degree_distribution_series(g).empty());
}

// ------------------------------------------------- fast-sampler KS bounds

TEST(StructuralKsTest, IdenticalGraphsScoreZero) {
  const SeedBundle seed = make_seed();
  ThreadPool pool(2);
  const StructuralKs ks =
      evaluate_structural_ks(seed.graph, seed.graph, pool);
  EXPECT_DOUBLE_EQ(ks.degree_ks, 0.0);
  EXPECT_DOUBLE_EQ(ks.pagerank_ks, 0.0);
}

// The matched-veracity regression bound behind the fig09 exact-vs-fast
// race: the Chung-Lu ball-dropping sampler must stay within a pinned KS
// distance of the exact recursive-descent expansion at the same scale,
// for both the degree and the PageRank distribution. Calibration at this
// configuration: two exact PGSK runs with different seeds already differ by
// degree KS ~0.055 (pure resampling noise), and the fast sampler measures
// degree ~0.086 / PageRank ~0.043 against exact — i.e. the approximation
// error is the same order as the exact generator's own run-to-run drift.
// The 0.15 bounds keep ~2x headroom over those measurements while still
// catching a broken sampler: a wrong row/column share flips them past 0.5.
TEST(StructuralKsTest, PgskFastWithinBoundOfExact) {
  const SeedBundle seed = make_seed();
  ThreadPool pool(2);
  ClusterSim cluster_exact(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  ClusterSim cluster_fast(ClusterConfig{.nodes = 2, .cores_per_node = 2});

  PgskOptions exact;
  exact.desired_edges = 4 * seed.graph.num_edges();
  exact.with_properties = false;
  exact.fit.gradient_iterations = 8;
  exact.fit.swaps_per_iteration = 200;
  exact.fit.burn_in_swaps = 500;
  const GenResult exact_result =
      pgsk_generate(seed.graph, seed.profile, cluster_exact, exact);

  PgskFastOptions fast;
  fast.desired_edges = exact.desired_edges;
  fast.with_properties = false;
  fast.fit = exact.fit;
  const GenResult fast_result =
      pgsk_fast_generate(seed.graph, seed.profile, cluster_fast, fast);

  // Matched scale: same fit, same sizing rule, same 2^k vertex space.
  EXPECT_EQ(fast_result.graph.num_vertices(),
            exact_result.graph.num_vertices());
  const StructuralKs ks =
      evaluate_structural_ks(exact_result.graph, fast_result.graph, pool);
  EXPECT_LT(ks.degree_ks, 0.15);
  EXPECT_LT(ks.pagerank_ks, 0.15);
}

// The skip-ahead sampler implements the same attachment kernel as exact
// PGPBA (inherit the destination of a uniformly drawn earlier edge), so
// the two distributions are near-identical: measured degree KS ~0.001 and
// PageRank KS ~0.002 at this configuration. The 0.05 bounds are ~25x the
// measurement and would flag any drift toward a different kernel — e.g.
// resolving through the full endpoint multiset (total-degree attachment,
// new vertices receiving edges) measures degree ~0.22 / PageRank ~0.7.
TEST(StructuralKsTest, PgpbaFastWithinBoundOfExact) {
  const SeedBundle seed = make_seed();
  ThreadPool pool(2);
  ClusterSim cluster_exact(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  ClusterSim cluster_fast(ClusterConfig{.nodes = 2, .cores_per_node = 2});

  PgpbaOptions exact;
  exact.desired_edges = 4 * seed.graph.num_edges();
  exact.fraction = 1.0;
  exact.with_properties = false;
  const GenResult exact_result =
      pgpba_generate(seed.graph, seed.profile, cluster_exact, exact);

  PgpbaFastOptions fast;
  fast.desired_edges = exact_result.graph.num_edges();
  fast.with_properties = false;
  const GenResult fast_result =
      pgpba_fast_generate(seed.graph, seed.profile, cluster_fast, fast);

  const StructuralKs ks =
      evaluate_structural_ks(exact_result.graph, fast_result.graph, pool);
  EXPECT_LT(ks.degree_ks, 0.05);
  EXPECT_LT(ks.pagerank_ks, 0.05);
}

// -------------------------------------------------------------- attributes

TEST(AttributeVeracityTest, IdenticalGraphScoresZero) {
  const SeedBundle seed = make_seed();
  const auto report =
      evaluate_attribute_veracity(seed.graph, seed.graph);
  EXPECT_DOUBLE_EQ(report.max_ks(), 0.0);
  EXPECT_DOUBLE_EQ(report.min_coverage(), 1.0);
}

TEST(AttributeVeracityTest, PgpbaKeepsAttributesFaithful) {
  const SeedBundle seed = make_seed();
  ClusterSim cluster(ClusterConfig{.nodes = 2, .cores_per_node = 2});
  PgpbaOptions options;
  options.desired_edges = 4 * seed.graph.num_edges();
  const GenResult result =
      pgpba_generate(seed.graph, seed.profile, cluster, options);
  const auto report =
      evaluate_attribute_veracity(seed.graph, result.graph);
  // Sampled from the seed's own distributions: tight KS, full coverage.
  EXPECT_LT(report.max_ks(), 0.05);
  EXPECT_DOUBLE_EQ(report.min_coverage(), 1.0);
  for (const auto& score : report.scores) {
    EXPECT_GE(score.ks_distance, 0.0);
    EXPECT_LE(score.ks_distance, 1.0);
  }
}

TEST(AttributeVeracityTest, DetectsCorruptedAttribute) {
  const SeedBundle seed = make_seed();
  PropertyGraph corrupted = seed.graph;
  // Re-point every flow at one port: the DEST_PORT distribution collapses.
  for (EdgeId e = 0; e < corrupted.num_edges(); ++e) {
    EdgeProperties p = corrupted.edge_properties(e);
    p.dst_port = 4444;
    corrupted.set_edge_properties(e, p);
  }
  const auto report = evaluate_attribute_veracity(seed.graph, corrupted);
  const auto& dst_port_score =
      report.scores[static_cast<std::size_t>(NetflowAttribute::kDstPort)];
  EXPECT_GT(dst_port_score.ks_distance, 0.5);
  EXPECT_LT(dst_port_score.support_coverage, 0.2);
  // Untouched attributes stay clean.
  const auto& proto_score =
      report.scores[static_cast<std::size_t>(NetflowAttribute::kProtocol)];
  EXPECT_DOUBLE_EQ(proto_score.ks_distance, 0.0);
}

TEST(AttributeVeracityTest, SamplingCapRespected) {
  const SeedBundle seed = make_seed();
  // With a tiny sampling cap the report must still be well-formed.
  const auto report =
      evaluate_attribute_veracity(seed.graph, seed.graph, 100);
  EXPECT_LE(report.max_ks(), 0.3);  // sampling noise only
}

TEST(AttributeVeracityTest, RequiresProperties) {
  const SeedBundle seed = make_seed();
  PropertyGraph bare(3);
  bare.add_edge(0, 1);
  EXPECT_THROW(evaluate_attribute_veracity(seed.graph, bare), CsbError);
}

}  // namespace
}  // namespace csb
