// Unit tests for src/workload: the node/edge/path/subgraph query catalogue
// and the mixed workload runner.
#include <gtest/gtest.h>

#include "seed/seed.hpp"
#include "trace/attacks.hpp"
#include "trace/traffic_model.hpp"
#include "util/error.hpp"
#include "workload/query_engine.hpp"
#include "workload/workload_runner.hpp"

namespace csb {
namespace {

/// 4 hosts: 0 -> 1 (HTTP big), 0 -> 2 (DNS small), 2 -> 3, 1 -> 3, plus a
/// self-contained second flow 0 -> 1.
PropertyGraph tiny_graph() {
  PropertyGraph g(4);
  EdgeProperties http;
  http.protocol = Protocol::kTcp;
  http.dst_port = 80;
  http.out_bytes = 1000;
  http.in_bytes = 50000;
  http.state = ConnState::kSF;
  EdgeProperties dns;
  dns.protocol = Protocol::kUdp;
  dns.dst_port = 53;
  dns.out_bytes = 80;
  dns.in_bytes = 200;
  g.add_edge(0, 1, http);
  g.add_edge(0, 2, dns);
  g.add_edge(2, 3, dns);
  g.add_edge(1, 3, http);
  g.add_edge(0, 1, dns);
  return g;
}

// ------------------------------------------------------------ node queries

TEST(QueryEngineTest, TopKByDegree) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  const auto top = engine.top_k_by_degree(2);
  ASSERT_EQ(top.size(), 2u);
  // Degrees: 0 -> 3, 1 -> 3, 2 -> 2, 3 -> 2; ties by id.
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 1u);
}

TEST(QueryEngineTest, TopKClampsToVertexCount) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  EXPECT_EQ(engine.top_k_by_degree(100).size(), 4u);
}

TEST(QueryEngineTest, TopKByTraffic) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  const auto top = engine.top_k_by_traffic(1);
  ASSERT_EQ(top.size(), 1u);
  // Hosts 0 and 1 both touch the two HTTP flows (51000 each) but host 1
  // also receives... compute: host 0 volume = 51000+280+280 = 51560;
  // host 1 = 51000+51000+280 = 102280 -> host 1 wins.
  EXPECT_EQ(top[0], 1u);
}

TEST(QueryEngineTest, HostSummary) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  const HostSummary s = engine.host_summary(0);
  EXPECT_EQ(s.flows_out, 3u);
  EXPECT_EQ(s.flows_in, 0u);
  EXPECT_EQ(s.bytes_sent, 1000u + 80u + 80u);
  EXPECT_EQ(s.bytes_received, 50000u + 200u + 200u);
  EXPECT_THROW((void)engine.host_summary(99), CsbError);
}

// ------------------------------------------------------------ edge queries

TEST(QueryEngineTest, FlowFilterByProtocolAndPort) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  FlowFilter tcp;
  tcp.protocol = Protocol::kTcp;
  EXPECT_EQ(engine.count_flows(tcp), 2u);
  FlowFilter dns;
  dns.dst_port = 53;
  EXPECT_EQ(engine.count_flows(dns), 3u);
  FlowFilter both;
  both.protocol = Protocol::kUdp;
  both.dst_port = 80;
  EXPECT_EQ(engine.count_flows(both), 0u);  // conjunction: no UDP on port 80
}

TEST(QueryEngineTest, FlowFilterByBytesAndState) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  FlowFilter big;
  big.min_total_bytes = 10'000;
  EXPECT_EQ(engine.count_flows(big), 2u);
  FlowFilter small;
  small.max_total_bytes = 500;
  EXPECT_EQ(engine.count_flows(small), 3u);
  FlowFilter sf;
  sf.state = ConnState::kSF;
  EXPECT_EQ(engine.count_flows(sf), 2u);
}

TEST(QueryEngineTest, FindFlowsRespectsLimit) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  FlowFilter all;
  EXPECT_EQ(engine.find_flows(all).size(), 5u);
  EXPECT_EQ(engine.find_flows(all, 2).size(), 2u);
  EXPECT_EQ(engine.find_flows(all, 2)[0], 0u);
}

TEST(QueryEngineTest, FlowQueriesRequireProperties) {
  PropertyGraph g(2);
  g.add_edge(0, 1);
  const GraphQueryEngine engine(g);
  EXPECT_THROW((void)engine.count_flows(FlowFilter{}), CsbError);
}

// ------------------------------------------------------------ path queries

TEST(QueryEngineTest, ShortestPathFollowsDirection) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  const auto path = engine.shortest_path(0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);  // 0 -> {1|2} -> 3
  EXPECT_EQ(path->front(), 0u);
  EXPECT_EQ(path->back(), 3u);
  // Direction matters: no path back from 3.
  EXPECT_FALSE(engine.shortest_path(3, 0).has_value());
  // Trivial path.
  EXPECT_EQ(engine.shortest_path(2, 2)->size(), 1u);
}

TEST(QueryEngineTest, KHopNeighborhood) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  EXPECT_EQ(engine.k_hop_neighborhood(0, 1),
            (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(engine.k_hop_neighborhood(0, 2),
            (std::vector<VertexId>{1, 2, 3}));
  EXPECT_TRUE(engine.k_hop_neighborhood(3, 5).empty());
}

// -------------------------------------------------------- subgraph queries

TEST(QueryEngineTest, EgonetExtractsInducedSubgraph) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  const PropertyGraph ego = engine.egonet(1);
  // Members: 1 (center), plus out-neighbor 3 and in-neighbor 0.
  EXPECT_EQ(ego.num_vertices(), 3u);
  // Induced edges: 0->1 (x2), 1->3. The 0->2 / 2->3 edges are outside.
  EXPECT_EQ(ego.num_edges(), 3u);
  EXPECT_TRUE(ego.has_properties());
}

TEST(QueryEngineTest, ScanningFansFindInjectedScan) {
  // Benign traffic + one host scan; the scanner must be the unique fan.
  TrafficModelConfig config;
  config.benign_sessions = 1'000;
  const TrafficModel model(config);
  auto sessions = model.generate_benign();
  Rng rng(3);
  HostScanConfig scan;
  scan.scanner_ip = 0xc0a80001;
  scan.target_ip = model.server_ip(10);
  scan.port_count = 500;
  for (const auto& s : inject_host_scan(scan, rng)) sessions.push_back(s);
  const auto records = sessions_to_netflow(sessions);
  const PropertyGraph graph = graph_from_netflow(records);
  const GraphQueryEngine engine(graph);

  const auto fans = engine.scanning_fans(100, 400.0);
  ASSERT_EQ(fans.size(), 1u);
  // Verify the fan is the scanner by matching its out-degree.
  EXPECT_GE(engine.host_summary(fans[0]).flows_out, 500u);
}

// --------------------------------------------------------------- workload

TEST(WorkloadRunnerTest, ExecutesRequestedQueryCount) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  WorkloadOptions options;
  options.queries = 500;
  const WorkloadResult result = run_workload(engine, options);
  EXPECT_EQ(result.total_queries, 500u);
  std::uint64_t classes = 0;
  for (const auto count : result.per_class) classes += count;
  EXPECT_EQ(classes, 500u);
  EXPECT_GT(result.queries_per_second(), 0.0);
}

TEST(WorkloadRunnerTest, DeterministicChecksumPerSeed) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  WorkloadOptions options;
  options.queries = 300;
  options.seed = 9;
  const auto a = run_workload(engine, options);
  const auto b = run_workload(engine, options);
  EXPECT_EQ(a.checksum, b.checksum);
  options.seed = 10;
  const auto c = run_workload(engine, options);
  EXPECT_NE(a.checksum, c.checksum);
}

TEST(WorkloadRunnerTest, MixWeightsShapeTheStream) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  WorkloadOptions options;
  options.queries = 2'000;
  options.mix.weights = {0, 1, 0, 0, 0, 0, 0};  // host summaries only
  const auto result = run_workload(engine, options);
  EXPECT_EQ(result.per_class[static_cast<std::size_t>(
                QueryClass::kHostSummary)],
            2'000u);
}

TEST(WorkloadRunnerTest, MultiThreadedMatchesTotal) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  WorkloadOptions options;
  options.queries = 1'000;
  options.threads = 4;
  const auto result = run_workload(engine, options);
  EXPECT_EQ(result.total_queries, 1'000u);
}

TEST(WorkloadRunnerTest, RejectsEmptyInput) {
  const PropertyGraph g = tiny_graph();
  const GraphQueryEngine engine(g);
  WorkloadOptions options;
  options.queries = 0;
  EXPECT_THROW(run_workload(engine, options), CsbError);
}

}  // namespace
}  // namespace csb
