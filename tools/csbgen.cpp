// csbgen — command-line front end to the CSB benchmark suite.
//
// Subcommands (run `csbgen help` for full usage):
//   trace      synthesize a network capture (benign traffic +/- attacks)
//   seed       run the Fig. 1 pipeline: PCAP or NetFlow CSV -> seed graph
//   generate   grow a synthetic property-graph with any registered algorithm
//   generators list the registered generator algorithms
//   report     pretty-print / validate a csb.trace.v1 NDJSON trace
//   veracity   score a synthetic dataset against its seed
//   detect     run the Section IV anomaly detector over NetFlow data
//   info       print statistics of a csb graph file
//
// All file formats are the library's own: .pcap (libpcap), .csv (NetFlow),
// .bin (csb binary graph), .graphml (export).
#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "flow/assembler.hpp"
#include "flow/netflow_io.hpp"
#include "gen/generator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "graph/algorithms.hpp"
#include "graph/betweenness.hpp"
#include "graph/graph_io.hpp"
#include "graph/pagerank.hpp"
#include "ids/calibrate.hpp"
#include "ids/detector.hpp"
#include "ids/streaming.hpp"
#include "pcap/packet.hpp"
#include "pcap/pcap_file.hpp"
#include "seed/seed.hpp"
#include "stats/power_law.hpp"
#include "store/graph_format.hpp"
#include "store/shard_store.hpp"
#include "trace/attacks.hpp"
#include "trace/traffic_model.hpp"
#include "util/format.hpp"
#include "veracity/veracity.hpp"
#include "workload/query_engine.hpp"
#include "workload/workload_runner.hpp"

namespace {

using namespace csb;

/// Thrown on malformed command lines (unknown flag, bad value); main prints
/// the message and exits 2, distinct from runtime failures (exit 1).
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// --key=value / --flag parser; positional args kept in order. Every
/// subcommand declares its known flags via require_known, and the numeric
/// getters parse strictly — both classes of error that the old parser let
/// through silently (`--egdes=1000` typos, `--edges=10k` suffixes) now fail
/// with a message naming the offending flag.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
          options_[arg.substr(2)] = "true";
        } else {
          options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  /// Rejects any flag outside `known` and any positional argument beyond
  /// `max_positional`, naming the offender and the accepted set.
  void require_known(const std::string& command,
                     const std::vector<std::string>& known,
                     std::size_t max_positional = 0) const {
    for (const auto& [key, value] : options_) {
      if (std::find(known.begin(), known.end(), key) == known.end()) {
        std::string message =
            "unknown option --" + key + " for '" + command + "' (accepted:";
        for (const auto& k : known) message += " --" + k;
        throw UsageError(message + ")");
      }
    }
    if (positional_.size() > max_positional) {
      throw UsageError("unexpected argument '" +
                       positional_[max_positional] + "' for '" + command +
                       "'");
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    std::uint64_t value = 0;
    const std::string& text = it->second;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
      throw UsageError("--" + key + "=" + text +
                       ": expected an unsigned integer");
    }
    return value;
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    double value = 0.0;
    const std::string& text = it->second;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size() ||
        !std::isfinite(value)) {
      throw UsageError("--" + key + "=" + text +
                       ": expected a finite number");
    }
    return value;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options_.contains(key);
  }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

void print_usage() {
  std::cout <<
      R"(csbgen — property-graph synthetic data generators for IDS benchmarking
(reproduction of the CLUSTER 2017 CSB suite)

usage: csbgen <command> [options]

commands:
  trace --out=cap.pcap [--sessions=20000] [--clients=2000] [--servers=100]
        [--seed=42] [--netflow=flows.csv]
        [--syn-flood=VICTIM_IP] [--host-scan=TARGET_IP]
        [--network-scan=SUBNET_IP] [--udp-flood=VICTIM_IP]
        [--icmp-flood=VICTIM_IP] [--ddos=VICTIM_IP]
      Synthesize a capture; optional attacks target the given dotted-quad
      IPs. Writes a pcap and, with --netflow, the assembled flows as CSV.

  seed --in=cap.pcap|flows.csv --out=seed.bin [--profile=seed.profile]
       [--threads=0]
      Fig. 1 pipeline: capture -> NetFlow -> property graph. The output is
      a csb binary graph with NetFlow properties. --threads sizes the
      ingestion pool (0 = hardware concurrency, 1 = serial); the outputs
      are byte-identical at any thread count.

  generate --seed=seed.bin --out=synth.bin --edges=N
           [--profile=seed.profile] [--algo=NAME] [--no-properties]
           [--nodes=8] [--cores=4] [--partitions=0] [--rng=1]
           [--out-format=binary] [--shards=8] [--store-budget-mb=256]
           [--trace=run.ndjson] [--graphml=synth.graphml] [--csv=synth.csv]
      Grow a synthetic property-graph from a seed, via any registered
      generator (csbgen generators lists them with per-algorithm flags;
      --generator is accepted as an alias of --algo). --out-format picks a
      registered output format (binary, csv, graphml, shards);
      --out-format=shards streams the graph into a sharded on-disk store
      with bounded resident memory (--shards files, CSR build under
      --store-budget-mb). --trace records the run as csb.trace.v1 NDJSON
      (spans, counters, memory watermarks) for `csbgen report`.

  generators
      List the registered generator algorithms with their typed options,
      and the registered output formats.

  report FILE [--check]
      Pretty-print a csb.trace.v1 NDJSON trace: run metadata, the phase
      tree, per-stage totals, the serial-segment (Amdahl, Fig. 12)
      breakdown, counters and memory watermarks. --check validates the
      schema instead and exits non-zero on any violation.

  veracity --seed=seed.bin --synthetic=synth.bin|shards-dir/
      Degree and PageRank veracity scores (paper Section V-A; lower is
      more faithful). A shard-store directory is scored by streaming over
      its mmap'd CSR index without loading the edge list.

  detect --in=flows.csv [--baseline=benign.csv] [--window-s=0]
      Run the Section IV detector. Thresholds are calibrated on
      --baseline when given, else Table-I-style defaults are used.
      --window-s > 0 switches to the streaming detector.

  info --in=graph.bin|shards-dir/ [--verify] [--threads=4]
      Vertex/edge counts, degree stats, components, memory footprint.
      For a shard-store directory, stats come from the manifest and the
      mmap'd CSR index; --verify recomputes every shard checksum,
      fanning the per-shard scans over --threads workers.

  analyze --in=graph.bin [--top=10] [--betweenness-samples=256]
      Full structural report: degree power-law fit, clustering, triangles,
      weak/strong components, k-core, assortativity, PageRank and
      betweenness top-k.

  workload --in=graph.bin [--queries=10000] [--threads=2] [--rng=1]
      Run the mixed cyber-security query stream (nodes/edges/paths/
      sub-graphs) and report per-class counts and throughput.
)";
}

std::vector<NetflowRecord> load_flows(const std::string& path,
                                      ThreadPool* pool = nullptr) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".pcap") {
    TraceRecorder* const recorder = TraceRecorder::current();
    IndexedPcap capture;
    {
      PhaseScope phase(recorder, "seed:index");
      capture = index_pcap_file(path);
    }
    const auto decoded = decode_packets(capture, pool);
    PhaseScope phase(recorder, "seed:assemble-flows");
    if (pool != nullptr) return assemble_flows_parallel(decoded, *pool);
    return assemble_flows(decoded);
  }
  return load_netflow_csv_file(path);
}

int cmd_trace(const Args& args) {
  args.require_known("trace",
                     {"out", "sessions", "clients", "servers", "seed",
                      "netflow", "syn-flood", "host-scan", "network-scan",
                      "udp-flood", "icmp-flood", "ddos"});
  const std::string out = args.get("out", "capture.pcap");
  TrafficModelConfig config;
  config.benign_sessions = args.get_u64("sessions", 20'000);
  config.client_hosts = static_cast<std::uint32_t>(args.get_u64("clients", 2'000));
  config.server_hosts = static_cast<std::uint32_t>(args.get_u64("servers", 100));
  config.seed = args.get_u64("seed", 42);
  const TrafficModel model(config);
  auto sessions = model.generate_benign();

  Rng rng(config.seed ^ 0xa77acULL);
  const std::uint64_t t0 = config.start_time_us;
  const auto inject = [&](const char* flag, auto make) {
    if (!args.has(flag)) return;
    const auto injected = make(ip_from_string(args.get(flag, "")));
    sessions.insert(sessions.end(), injected.begin(), injected.end());
    std::cout << "injected " << injected.size() << " " << flag
              << " flows at " << args.get(flag, "") << "\n";
  };
  inject("syn-flood", [&](std::uint32_t ip) {
    SynFloodConfig c;
    c.victim_ip = ip;
    c.start_us = t0;
    return inject_syn_flood(c, rng);
  });
  inject("host-scan", [&](std::uint32_t ip) {
    HostScanConfig c;
    c.scanner_ip = 0xc6336401;
    c.target_ip = ip;
    c.start_us = t0;
    return inject_host_scan(c, rng);
  });
  inject("network-scan", [&](std::uint32_t ip) {
    NetworkScanConfig c;
    c.scanner_ip = 0xc6336402;
    c.subnet_base = ip;
    c.start_us = t0;
    return inject_network_scan(c, rng);
  });
  inject("udp-flood", [&](std::uint32_t ip) {
    UdpFloodConfig c;
    c.attacker_ip = 0xc6336403;
    c.victim_ip = ip;
    c.start_us = t0;
    return inject_udp_flood(c, rng);
  });
  inject("icmp-flood", [&](std::uint32_t ip) {
    IcmpFloodConfig c;
    c.attacker_ip = 0xc6336404;
    c.victim_ip = ip;
    c.start_us = t0;
    return inject_icmp_flood(c, rng);
  });
  inject("ddos", [&](std::uint32_t ip) {
    DdosConfig c;
    c.victim_ip = ip;
    c.start_us = t0;
    return inject_ddos(c, rng);
  });

  write_pcap_file(out, sessions_to_packets(sessions));
  std::cout << "wrote " << out << " (" << sessions.size() << " sessions)\n";
  if (args.has("netflow")) {
    const std::string csv = args.get("netflow", "flows.csv");
    save_netflow_csv_file(sessions_to_netflow(sessions), csv);
    std::cout << "wrote " << csv << "\n";
  }
  return 0;
}

int cmd_seed(const Args& args) {
  args.require_known("seed", {"in", "out", "profile", "trace", "threads"});
  const std::string in = args.get("in", "");
  const std::string out = args.get("out", "seed.bin");
  CSB_CHECK_MSG(!in.empty(), "seed requires --in=<capture.pcap|flows.csv>");

  // --threads=0 sizes the pool to the hardware; 1 keeps the historical
  // serial path. Outputs are byte-identical either way.
  std::uint64_t threads = args.get_u64("threads", 0);
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  MetricsRegistry::instance().reset_all();

  // --trace: the seed pipeline has no ClusterSim, so its phases attach via
  // the process-wide recorder slot (see build_seed_from_packets).
  std::unique_ptr<TraceRecorder> recorder;
  if (args.has("trace")) {
    recorder = std::make_unique<TraceRecorder>();
    recorder->enable_memory_sampling(true);
    recorder->set_meta("tool", "csbgen seed");
    recorder->set_meta("input", in);
    TraceRecorder::set_current(recorder.get());
    recorder->record_memory("start");
  }

  std::vector<NetflowRecord> flows;
  {
    PhaseScope phase(recorder.get(), "seed:load");
    flows = load_flows(in, pool.get());
  }
  PropertyGraph graph;
  {
    PhaseScope phase(recorder.get(), "seed:build-graph");
    graph = graph_from_netflow(flows, pool.get());
  }
  save_binary_file(graph, out);
  const std::uint64_t skipped =
      MetricsRegistry::instance().counter("seed.skipped_packets").value();
  std::cout << in << ": " << flows.size() << " flows -> " << out << " ("
            << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges, " << skipped << " packets skipped)\n";
  if (args.has("profile")) {
    const std::string profile_path = args.get("profile", "seed.profile");
    {
      PhaseScope phase(recorder.get(), "seed:profile");
      SeedProfile::analyze(graph, pool.get()).save_file(profile_path);
    }
    std::cout << "wrote " << profile_path << " (fitted distributions)\n";
  }
  if (recorder) {
    recorder->record_memory("end");
    recorder->record_metrics_snapshot();
    const std::string trace_path = args.get("trace", "");
    recorder->write_ndjson_file(trace_path);
    TraceRecorder::set_current(nullptr);
    std::cout << "wrote " << trace_path << " (csb.trace.v1)\n";
  }
  return 0;
}

int cmd_generate(const Args& args) {
  // --algo picks the registered generator (--generator kept as an alias);
  // the known-flag set is the base flags plus whatever options the selected
  // algorithm publishes, so `--algo=pgsk --fraction=2` is rejected.
  const std::string algo = args.get("algo", args.get("generator", "pgpba"));
  const Generator& generator = require_generator(algo);
  const auto specs = generator.options();
  std::vector<std::string> known = {
      "seed",  "out",        "edges",  "profile", "algo",
      "generator", "nodes",  "cores",  "partitions", "rng",
      "no-properties", "trace", "graphml", "csv",
      "out-format", "shards", "store-budget-mb"};
  for (const auto& spec : specs) known.push_back(spec.name);
  args.require_known("generate", known);

  // --out-format resolves through the format registry up front, so an
  // unknown name fails before any generation work, listing what exists.
  const std::string format_name = args.get("out-format", "binary");
  const GraphFormat& format = require_graph_format(format_name);

  const std::string seed_path = args.get("seed", "");
  const std::string out =
      args.get("out", format.is_directory_format() ? "synthetic.shards"
                                                   : "synthetic.bin");
  CSB_CHECK_MSG(!seed_path.empty(), "generate requires --seed=<seed.bin>");
  const PropertyGraph seed_graph = load_binary_file(seed_path);
  // A cached profile skips the Fig. 1 analysis step.
  const SeedProfile profile =
      args.has("profile") ? SeedProfile::load_file(args.get("profile", ""))
                          : SeedProfile::analyze(seed_graph);

  GenConfig config;
  config.desired_edges = args.get_u64("edges", 10 * seed_graph.num_edges());
  config.partitions = args.get_u64("partitions", 0);
  config.seed = args.get_u64("rng", 1);
  config.with_properties = !args.has("no-properties");
  for (const auto& spec : specs) {
    if (args.has(spec.name)) config.extra[spec.name] = args.get(spec.name, "");
  }
  // Malformed values fail here, naming the key, before any work runs.
  try {
    validate_extra_options(specs, config);
  } catch (const CsbError& error) {
    throw UsageError(error.what());
  }
  if (format_name == "shards" &&
      (generator.name() == "pgsk-fast" || generator.name() == "pgsk") &&
      !config.has("dedup-spill-dir")) {
    // Default external-sort spills next to the output shards: same
    // filesystem, cleaned up with the run.
    config.extra["dedup-spill-dir"] = out;
  }

  ClusterSim cluster(ClusterConfig{
      .nodes = args.get_u64("nodes", 8),
      .cores_per_node = args.get_u64("cores", 4),
  });

  std::unique_ptr<TraceRecorder> recorder;
  if (args.has("trace")) {
    recorder = std::make_unique<TraceRecorder>();
    // Fresh counters so the trace snapshot is attributable to this run.
    MetricsRegistry::instance().reset_all();
    recorder->enable_memory_sampling(true);
    recorder->set_meta("tool", "csbgen generate");
    recorder->set_meta("algo", std::string(generator.name()));
    recorder->set_meta("seed_file", seed_path);
    recorder->set_meta("nodes", std::to_string(cluster.config().nodes));
    recorder->set_meta("cores",
                       std::to_string(cluster.config().cores_per_node));
    recorder->set_meta("edges", std::to_string(config.desired_edges));
    recorder->set_meta("rng", std::to_string(config.seed));
    TraceRecorder::set_current(recorder.get());
    cluster.set_trace(recorder.get());
    recorder->record_memory("start");
  }

  const auto finish_trace = [&] {
    if (!recorder) return;
    recorder->record_memory("end");
    recorder->record_metrics_snapshot();
    const std::string trace_path = args.get("trace", "");
    recorder->write_ndjson_file(trace_path);
    cluster.set_trace(nullptr);
    TraceRecorder::set_current(nullptr);
    std::cout << "wrote " << trace_path << " (csb.trace.v1, "
              << recorder->spans().size() << " spans)\n";
  };

  if (format.is_directory_format()) {
    // Out-of-core path: the generator streams shard-sized chunks into the
    // store, so the full edge list never materializes in RAM.
    if (args.has("graphml") || args.has("csv")) {
      throw UsageError("--graphml/--csv exports need an in-RAM result; "
                       "not available with --out-format=" + format_name);
    }
    ShardStoreOptions store_options;
    store_options.directory = out;
    store_options.shard_count = args.get_u64("shards", 8);
    store_options.memory_budget_bytes =
        args.get_u64("store-budget-mb", 256) << 20;
    store_options.pool = &cluster.pool();
    ShardStore store(store_options);
    const StoreGenResult result =
        generator.generate_into(seed_graph, profile, cluster, config, store);
    finish_trace();
    std::cout << generator.name() << ": " << result.edges << " edges, "
              << result.vertices << " vertices ("
              << store_options.shard_count << " shards, "
              << result.iterations << " iterations, "
              << result.metrics.simulated_seconds << " simulated s on "
              << cluster.config().nodes << "x"
              << cluster.config().cores_per_node << " virtual cores) -> "
              << out << "\n";
    return 0;
  }

  GenResult result = generator.generate(seed_graph, profile, cluster, config);
  finish_trace();

  format.save(result.graph, out);
  std::cout << generator.name() << ": " << result.graph.num_edges()
            << " edges, "
            << result.graph.num_vertices() << " vertices ("
            << human_bytes(result.graph.memory_bytes()) << ", "
            << result.iterations << " iterations, "
            << result.metrics.simulated_seconds << " simulated s on "
            << cluster.config().nodes << "x"
            << cluster.config().cores_per_node << " virtual cores) -> "
            << out << "\n";
  if (args.has("graphml")) {
    std::ofstream xml(args.get("graphml", ""));
    save_graphml(result.graph, xml);
    std::cout << "wrote " << args.get("graphml", "") << "\n";
  }
  if (args.has("csv")) {
    std::ofstream csv(args.get("csv", ""));
    save_csv(result.graph, csv);
    std::cout << "wrote " << args.get("csv", "") << "\n";
  }
  return 0;
}

const char* option_kind_name(OptionKind kind) {
  switch (kind) {
    case OptionKind::kU64: return "uint";
    case OptionKind::kDouble: return "float";
    case OptionKind::kFlag: return "flag";
    case OptionKind::kString: return "string";
  }
  return "?";
}

int cmd_generators(const Args& args) {
  args.require_known("generators", {});
  for (const Generator* generator : all_generators()) {
    std::cout << "  " << std::left << std::setw(12) << generator->name()
              << generator->description() << "\n";
    for (const OptionSpec& spec : generator->options()) {
      std::cout << "      --" << std::left << std::setw(18) << spec.name
                << std::setw(8) << option_kind_name(spec.kind);
      if (!spec.default_value.empty()) {
        std::cout << "[" << spec.default_value << "]  ";
      }
      std::cout << spec.help << "\n";
    }
  }
  std::cout << "\noutput formats (generate --out-format=NAME):\n";
  for (const GraphFormat* format : all_graph_formats()) {
    std::cout << "  " << std::left << std::setw(12) << format->name()
              << format->description() << "\n";
  }
  return 0;
}

int cmd_report(const Args& args) {
  args.require_known("report", {"in", "check"}, 1);
  const std::string path = !args.positional().empty() ? args.positional()[0]
                                                      : args.get("in", "");
  if (path.empty()) throw UsageError("report requires a trace file argument");

  if (args.has("check")) {
    std::vector<std::string> errors;
    const ParsedTrace trace = parse_trace_file(path, &errors);
    for (const auto& error : errors) {
      std::cout << path << ": " << error << "\n";
    }
    std::cout << path << ": " << trace.records << " records, "
              << trace.spans.size() << " spans, " << errors.size()
              << " schema violations\n";
    return errors.empty() ? 0 : 1;
  }

  const ParsedTrace trace = parse_trace_file(path);
  std::cout << path << ": " << kTraceSchemaVersion << ", " << trace.records
            << " records\n";
  if (!trace.meta.empty()) {
    std::cout << "meta:";
    for (const auto& [key, value] : trace.meta) {
      std::cout << " " << key << "=" << value;
    }
    std::cout << "\n";
  }

  // Phase tree: phases nest via parent ids; each line shows the phase's
  // wall time (t1 - t0 on the host clock).
  std::vector<const SpanRecord*> phases;
  for (const SpanRecord& span : trace.spans) {
    if (span.kind == "phase") phases.push_back(&span);
  }
  if (!phases.empty()) {
    std::cout << "phases:\n";
    const std::function<void(std::uint64_t, int)> print_children =
        [&](std::uint64_t parent, int depth) {
          for (const SpanRecord* phase : phases) {
            if (phase->parent != parent) continue;
            std::cout << std::string(2 * (depth + 1), ' ') << std::left
                      << std::setw(std::max(2, 24 - 2 * depth))
                      << phase->name << std::setprecision(6) << std::fixed
                      << (phase->t1 - phase->t0) << " s\n";
            print_children(phase->id, depth + 1);
          }
        };
    print_children(0, 0);
  }

  // Stage table: aggregate by name, preserving first-seen order.
  struct StageAgg {
    std::string name;
    std::uint64_t spans = 0;
    std::uint64_t tasks = 0;
    double task_seconds = 0.0;
    double booked_seconds = 0.0;
  };
  std::vector<StageAgg> stages;
  double parallel_booked = 0.0;
  double serial_booked = 0.0;
  std::vector<StageAgg> serials;
  for (const SpanRecord& span : trace.spans) {
    auto& table = span.kind == "stage" ? stages : serials;
    if (span.kind == "stage") {
      parallel_booked += span.seconds;
    } else if (span.kind == "serial") {
      serial_booked += span.seconds;
    } else {
      continue;
    }
    const auto it =
        std::find_if(table.begin(), table.end(),
                     [&span](const StageAgg& a) { return a.name == span.name; });
    StageAgg& agg = it != table.end() ? *it : table.emplace_back();
    agg.name = span.name;
    agg.spans += 1;
    agg.tasks += span.tasks;
    agg.task_seconds += span.task_seconds;
    agg.booked_seconds += span.seconds;
  }
  const double simulated = parallel_booked + serial_booked;
  if (!stages.empty()) {
    std::cout << "stages:\n  " << std::left << std::setw(20) << "name"
              << std::right << std::setw(8) << "spans" << std::setw(10)
              << "tasks" << std::setw(14) << "task-s" << std::setw(14)
              << "booked-s\n";
    for (const StageAgg& agg : stages) {
      std::cout << "  " << std::left << std::setw(20) << agg.name
                << std::right << std::setw(8) << agg.spans << std::setw(10)
                << agg.tasks << std::setw(14) << std::setprecision(6)
                << std::fixed << agg.task_seconds << std::setw(14)
                << agg.booked_seconds << "\n";
    }
  }
  if (!serials.empty()) {
    std::cout << "serial segments (Amdahl breakdown, Fig. 12):\n";
    for (const StageAgg& agg : serials) {
      std::cout << "  " << std::left << std::setw(20) << agg.name
                << std::right << std::setw(14) << std::setprecision(6)
                << std::fixed << agg.booked_seconds << " s  "
                << std::setprecision(2)
                << (simulated > 0.0 ? 100.0 * agg.booked_seconds / simulated
                                    : 0.0)
                << "% of simulated\n";
    }
  }
  if (simulated > 0.0) {
    std::cout << "simulated: " << std::setprecision(6) << std::fixed
              << simulated << " s (parallel " << parallel_booked
              << " s + serial " << serial_booked << " s)\n";
  }

  if (!trace.benches.empty()) {
    std::cout << "bench records:\n";
    for (const BenchRecord& bench : trace.benches) {
      std::cout << "  " << bench.name << ":";
      for (const auto& [key, value] : bench.fields) {
        std::cout << " " << key << "=" << value.dump();
      }
      std::cout << "\n";
    }
  }
  if (!trace.counters.empty()) {
    std::cout << "counters:\n";
    for (const CounterRecord& counter : trace.counters) {
      std::cout << "  " << std::left << std::setw(28) << counter.name
                << with_commas(counter.value) << "\n";
    }
  }
  if (!trace.mems.empty()) {
    std::cout << "memory:\n";
    for (const MemRecord& mem : trace.mems) {
      std::cout << "  " << std::left << std::setw(20) << mem.label << "rss "
                << human_bytes(mem.rss_bytes) << ", peak "
                << human_bytes(mem.hwm_bytes) << "\n";
    }
  }
  return 0;
}

int cmd_veracity(const Args& args) {
  args.require_known("veracity", {"seed", "synthetic"});
  const std::string seed_path = args.get("seed", "");
  const std::string synth_path = args.get("synthetic", "");
  CSB_CHECK_MSG(!seed_path.empty() && !synth_path.empty(),
                "veracity requires --seed and --synthetic");
  const PropertyGraph seed = load_binary_file(seed_path);
  ThreadPool pool(4);
  VeracityReport report;
  if (std::filesystem::is_directory(synth_path)) {
    // Shard-store synthetic side: stream degrees and PageRank off the
    // mmap'd CSR index — the edge list never materializes in RAM.
    const ShardStoreReader reader(synth_path);
    CSB_CHECK_MSG(reader.has_csr(),
                  "shard store has no CSR index: " << synth_path);
    report = evaluate_veracity(seed, reader.csr(), pool);
  } else {
    const PropertyGraph synth = load_binary_file(synth_path);
    report = evaluate_veracity(seed, synth, pool);
  }
  std::cout << "degree veracity score:   " << sci(report.degree_score)
            << "\npagerank veracity score: " << sci(report.pagerank_score)
            << "\n(lower = more faithful to the seed)\n";
  return 0;
}

int cmd_detect(const Args& args) {
  args.require_known("detect", {"in", "baseline", "window-s"});
  const std::string in = args.get("in", "");
  CSB_CHECK_MSG(!in.empty(), "detect requires --in=<flows.csv|capture.pcap>");
  const auto flows = load_flows(in);

  DetectionThresholds thresholds;
  if (args.has("baseline")) {
    const auto baseline = load_flows(args.get("baseline", ""));
    thresholds = calibrate_thresholds(
        baseline, CalibrationOptions{.quantile = 0.995, .margin = 2.5});
    std::cout << "calibrated on " << baseline.size() << " baseline flows\n";
  } else {
    std::cout << "using default Table-I-style thresholds (pass --baseline "
                 "to calibrate)\n";
  }

  std::vector<Alarm> alarms;
  const std::uint64_t window_s = args.get_u64("window-s", 0);
  if (window_s > 0) {
    StreamingDetector detector(thresholds,
                               StreamingOptions{.window_us = window_s * 1'000'000});
    auto sorted = flows;
    std::sort(sorted.begin(), sorted.end(),
              [](const NetflowRecord& a, const NetflowRecord& b) {
                return a.first_us < b.first_us;
              });
    for (const auto& record : sorted) {
      for (const auto& raised : detector.ingest(record)) {
        alarms.push_back(raised.alarm);
      }
    }
    for (const auto& raised : detector.finish()) {
      alarms.push_back(raised.alarm);
    }
    std::cout << "streaming mode: " << detector.windows_closed()
              << " windows\n";
  } else {
    alarms = AnomalyDetector(thresholds).detect(flows);
  }

  std::cout << flows.size() << " flows analyzed, " << alarms.size()
            << " alarms\n";
  for (const Alarm& alarm : alarms) {
    std::cout << "  [" << to_string(alarm.type) << "] "
              << (alarm.destination_based ? "victim " : "source ")
              << ip_to_string(alarm.detection_ip) << " ("
              << to_string(alarm.protocol) << ")\n";
  }
  return 0;
}

/// Loads a graph by extension: .graphml via the GraphML importer,
/// anything else as a csb binary graph.
PropertyGraph load_graph(const std::string& path) {
  if (path.size() > 8 && path.substr(path.size() - 8) == ".graphml") {
    std::ifstream in(path);
    CSB_CHECK_MSG(in.is_open(), "cannot open for reading: " << path);
    return load_graphml(in);
  }
  return load_binary_file(path);
}

int cmd_info(const Args& args) {
  args.require_known("info", {"in", "verify", "threads"});
  const std::string in = args.get("in", "");
  CSB_CHECK_MSG(!in.empty(), "info requires --in=<graph.bin|graph.graphml>");
  if (std::filesystem::is_directory(in)) {
    // Shard-store directory: stats come off the manifest + mmap'd CSR —
    // nothing is loaded into RAM. --verify recomputes every checksum.
    const ShardStoreReader reader(in);
    const ShardManifest& manifest = reader.manifest();
    std::cout << in << ":\n  format:      shards ("
              << manifest.shard_count << " shards, "
              << with_commas(manifest.edges_per_shard)
              << " edges/shard)\n  vertices:    "
              << with_commas(manifest.vertices) << "\n  edges:       "
              << with_commas(manifest.edges) << "\n  properties:  "
              << (manifest.with_properties ? "yes" : "no")
              << "\n  csr index:   " << (reader.has_csr() ? "yes" : "no")
              << "\n";
    if (reader.has_csr()) {
      const CsrIndexView& csr = reader.csr();
      std::uint64_t max_degree = 0;
      for (VertexId v = 0; v < csr.num_vertices(); ++v) {
        max_degree = std::max(max_degree, csr.total_degree(v));
      }
      std::cout << "  max degree:  " << with_commas(max_degree)
                << "\n  mean degree: "
                << (csr.num_vertices()
                        ? 2.0 * static_cast<double>(csr.num_edges()) /
                              static_cast<double>(csr.num_vertices())
                        : 0.0)
                << "\n";
    }
    if (args.has("verify")) {
      // Per-shard scans + the CSR word sum fan out over the pool; the
      // commutative index-keyed checksums make the totals order-free.
      const std::uint64_t threads = args.get_u64("threads", 4);
      if (threads > 1) {
        ThreadPool pool(static_cast<std::size_t>(threads));
        reader.verify(&pool);
      } else {
        reader.verify();
      }
      std::cout << "  checksums:   all verified\n";
    }
    return 0;
  }
  const PropertyGraph graph = load_graph(in);
  const auto degrees = total_degrees(graph);
  std::uint64_t max_degree = 0;
  for (const auto d : degrees) max_degree = std::max(max_degree, d);
  std::cout << in << ":\n  vertices:    " << with_commas(graph.num_vertices())
            << "\n  edges:       " << with_commas(graph.num_edges())
            << "\n  properties:  " << (graph.has_properties() ? "yes" : "no")
            << "\n  components:  " << with_commas(count_components(graph))
            << "\n  max degree:  " << with_commas(max_degree)
            << "\n  mean degree: "
            << (graph.num_vertices()
                    ? 2.0 * static_cast<double>(graph.num_edges()) /
                          static_cast<double>(graph.num_vertices())
                    : 0.0)
            << "\n  memory:      " << human_bytes(graph.memory_bytes())
            << "\n";
  return 0;
}

int cmd_analyze(const Args& args) {
  args.require_known("analyze", {"in", "top", "betweenness-samples"});
  const std::string in = args.get("in", "");
  CSB_CHECK_MSG(!in.empty(), "analyze requires --in=<graph.bin|graph.graphml>");
  const PropertyGraph graph = load_graph(in);
  CSB_CHECK_MSG(graph.num_vertices() > 0, "graph has no vertices");
  const std::size_t top = args.get_u64("top", 10);
  ThreadPool pool(4);

  std::cout << in << ": " << with_commas(graph.num_vertices())
            << " vertices, " << with_commas(graph.num_edges()) << " edges\n";

  // Degree structure.
  const auto degrees = total_degrees(graph);
  std::vector<double> degree_samples(degrees.begin(), degrees.end());
  try {
    const PowerLawFit fit = fit_power_law(degree_samples);
    std::cout << "degree power law: alpha=" << fit.alpha
              << " xmin=" << fit.xmin << " ks=" << fit.ks << " (tail "
              << fit.tail_n << " vertices)\n";
  } catch (const CsbError&) {
    std::cout << "degree power law: no viable fit (degenerate degrees)\n";
  }
  std::cout << "assortativity: " << degree_assortativity(graph) << "\n";

  // Cohesion.
  std::cout << "weak components:   " << with_commas(count_components(graph))
            << "\nstrong components: "
            << with_commas(count_strong_components(graph)) << "\n";
  std::cout << "triangles: " << with_commas(triangle_count(graph))
            << ", clustering coefficient: "
            << global_clustering_coefficient(graph) << "\n";
  const auto cores = core_numbers(graph);
  std::cout << "max k-core: "
            << *std::max_element(cores.begin(), cores.end()) << "\n";

  // Centrality top-k.
  const auto print_topk = [&](const char* name,
                              const std::vector<double>& scores) {
    std::vector<VertexId> order(scores.size());
    for (VertexId v = 0; v < order.size(); ++v) order[v] = v;
    const std::size_t k = std::min(top, order.size());
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&scores](VertexId a, VertexId b) {
                        return scores[a] > scores[b];
                      });
    std::cout << name << " top-" << k << ":";
    for (std::size_t i = 0; i < k; ++i) {
      std::cout << " " << order[i] << "(" << sci(scores[order[i]], 3) << ")";
    }
    std::cout << "\n";
  };
  print_topk("pagerank", pagerank(graph, pool).scores);
  if (graph.has_properties()) {
    print_topk("pagerank (byte-weighted)",
               pagerank_by_traffic(graph, pool).scores);
  }
  BetweennessOptions bc_options;
  bc_options.sample_sources = args.get_u64("betweenness-samples", 256);
  print_topk("betweenness", betweenness_centrality(graph, pool, bc_options));
  return 0;
}

int cmd_workload(const Args& args) {
  args.require_known("workload", {"in", "queries", "threads", "rng"});
  const std::string in = args.get("in", "");
  CSB_CHECK_MSG(!in.empty(), "workload requires --in=<graph.bin|graph.graphml>");
  const PropertyGraph graph = load_graph(in);
  const GraphQueryEngine engine(graph);
  WorkloadOptions options;
  options.queries = args.get_u64("queries", 10'000);
  options.threads = args.get_u64("threads", 2);
  options.seed = args.get_u64("rng", 1);
  const WorkloadResult result = run_workload(engine, options);
  std::cout << in << ": " << result.total_queries << " queries in "
            << result.wall_seconds << " s ("
            << static_cast<std::uint64_t>(result.queries_per_second())
            << " q/s), checksum " << result.checksum << "\n";
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    std::cout << "  " << to_string(static_cast<QueryClass>(c)) << ": "
              << result.per_class[c] << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "trace") return cmd_trace(args);
    if (command == "seed") return cmd_seed(args);
    if (command == "generate") return cmd_generate(args);
    if (command == "generators") return cmd_generators(args);
    if (command == "report") return cmd_report(args);
    if (command == "veracity") return cmd_veracity(args);
    if (command == "detect") return cmd_detect(args);
    if (command == "info") return cmd_info(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "workload") return cmd_workload(args);
    if (command == "help" || command == "--help") {
      print_usage();
      return 0;
    }
  } catch (const UsageError& error) {
    std::cerr << "csbgen " << command << ": " << error.what()
              << "\nrun 'csbgen help' for usage\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "csbgen " << command << ": " << error.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << command << "\n";
  print_usage();
  return 2;
}
