// csbgen — command-line front end to the CSB benchmark suite.
//
// Subcommands (run `csbgen help` for full usage):
//   trace     synthesize a network capture (benign traffic +/- attacks)
//   seed      run the Fig. 1 pipeline: PCAP or NetFlow CSV -> seed graph
//   generate  grow a synthetic property-graph with PGPBA or PGSK
//   veracity  score a synthetic dataset against its seed
//   detect    run the Section IV anomaly detector over NetFlow data
//   info      print statistics of a csb graph file
//
// All file formats are the library's own: .pcap (libpcap), .csv (NetFlow),
// .bin (csb binary graph), .graphml (export).
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "flow/assembler.hpp"
#include "flow/netflow_io.hpp"
#include "gen/pgpba.hpp"
#include "gen/pgsk.hpp"
#include "graph/algorithms.hpp"
#include "graph/betweenness.hpp"
#include "graph/graph_io.hpp"
#include "graph/pagerank.hpp"
#include "ids/calibrate.hpp"
#include "ids/detector.hpp"
#include "ids/streaming.hpp"
#include "pcap/packet.hpp"
#include "pcap/pcap_file.hpp"
#include "seed/seed.hpp"
#include "stats/power_law.hpp"
#include "trace/attacks.hpp"
#include "trace/traffic_model.hpp"
#include "util/format.hpp"
#include "veracity/veracity.hpp"
#include "workload/query_engine.hpp"
#include "workload/workload_runner.hpp"

namespace {

using namespace csb;

/// Minimal --key=value / --flag parser; positional args kept in order.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
          options_[arg.substr(2)] = "true";
        } else {
          options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return options_.contains(key);
  }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

void print_usage() {
  std::cout <<
      R"(csbgen — property-graph synthetic data generators for IDS benchmarking
(reproduction of the CLUSTER 2017 CSB suite)

usage: csbgen <command> [options]

commands:
  trace --out=cap.pcap [--sessions=20000] [--clients=2000] [--servers=100]
        [--seed=42] [--netflow=flows.csv]
        [--syn-flood=VICTIM_IP] [--host-scan=TARGET_IP]
        [--network-scan=SUBNET_IP] [--udp-flood=VICTIM_IP]
        [--icmp-flood=VICTIM_IP] [--ddos=VICTIM_IP]
      Synthesize a capture; optional attacks target the given dotted-quad
      IPs. Writes a pcap and, with --netflow, the assembled flows as CSV.

  seed --in=cap.pcap|flows.csv --out=seed.bin [--profile=seed.profile]
      Fig. 1 pipeline: capture -> NetFlow -> property graph. The output is
      a csb binary graph with NetFlow properties.

  generate --seed=seed.bin --out=synth.bin --edges=N
           [--profile=seed.profile] [--generator=pgpba|pgsk]
           [--fraction=0.5] [--degree-mode]
           [--nodes=8] [--cores=4] [--partitions=0] [--rng=1]
           [--graphml=synth.graphml] [--csv=synth.csv]
      Grow a synthetic property-graph from a seed.

  veracity --seed=seed.bin --synthetic=synth.bin
      Degree and PageRank veracity scores (paper Section V-A; lower is
      more faithful).

  detect --in=flows.csv [--baseline=benign.csv] [--window-s=0]
      Run the Section IV detector. Thresholds are calibrated on
      --baseline when given, else Table-I-style defaults are used.
      --window-s > 0 switches to the streaming detector.

  info --in=graph.bin
      Vertex/edge counts, degree stats, components, memory footprint.

  analyze --in=graph.bin [--top=10] [--betweenness-samples=256]
      Full structural report: degree power-law fit, clustering, triangles,
      weak/strong components, k-core, assortativity, PageRank and
      betweenness top-k.

  workload --in=graph.bin [--queries=10000] [--threads=2] [--rng=1]
      Run the mixed cyber-security query stream (nodes/edges/paths/
      sub-graphs) and report per-class counts and throughput.
)";
}

std::vector<NetflowRecord> load_flows(const std::string& path) {
  if (path.size() > 5 && path.substr(path.size() - 5) == ".pcap") {
    const auto packets = read_pcap_file(path);
    std::vector<DecodedPacket> decoded;
    decoded.reserve(packets.size());
    for (const auto& packet : packets) {
      if (auto d = decode_frame(packet.data.data(), packet.data.size(),
                                packet.orig_len, packet.timestamp_us)) {
        decoded.push_back(*d);
      }
    }
    return assemble_flows(decoded);
  }
  return load_netflow_csv_file(path);
}

int cmd_trace(const Args& args) {
  const std::string out = args.get("out", "capture.pcap");
  TrafficModelConfig config;
  config.benign_sessions = args.get_u64("sessions", 20'000);
  config.client_hosts = static_cast<std::uint32_t>(args.get_u64("clients", 2'000));
  config.server_hosts = static_cast<std::uint32_t>(args.get_u64("servers", 100));
  config.seed = args.get_u64("seed", 42);
  const TrafficModel model(config);
  auto sessions = model.generate_benign();

  Rng rng(config.seed ^ 0xa77acULL);
  const std::uint64_t t0 = config.start_time_us;
  const auto inject = [&](const char* flag, auto make) {
    if (!args.has(flag)) return;
    const auto injected = make(ip_from_string(args.get(flag, "")));
    sessions.insert(sessions.end(), injected.begin(), injected.end());
    std::cout << "injected " << injected.size() << " " << flag
              << " flows at " << args.get(flag, "") << "\n";
  };
  inject("syn-flood", [&](std::uint32_t ip) {
    SynFloodConfig c;
    c.victim_ip = ip;
    c.start_us = t0;
    return inject_syn_flood(c, rng);
  });
  inject("host-scan", [&](std::uint32_t ip) {
    HostScanConfig c;
    c.scanner_ip = 0xc6336401;
    c.target_ip = ip;
    c.start_us = t0;
    return inject_host_scan(c, rng);
  });
  inject("network-scan", [&](std::uint32_t ip) {
    NetworkScanConfig c;
    c.scanner_ip = 0xc6336402;
    c.subnet_base = ip;
    c.start_us = t0;
    return inject_network_scan(c, rng);
  });
  inject("udp-flood", [&](std::uint32_t ip) {
    UdpFloodConfig c;
    c.attacker_ip = 0xc6336403;
    c.victim_ip = ip;
    c.start_us = t0;
    return inject_udp_flood(c, rng);
  });
  inject("icmp-flood", [&](std::uint32_t ip) {
    IcmpFloodConfig c;
    c.attacker_ip = 0xc6336404;
    c.victim_ip = ip;
    c.start_us = t0;
    return inject_icmp_flood(c, rng);
  });
  inject("ddos", [&](std::uint32_t ip) {
    DdosConfig c;
    c.victim_ip = ip;
    c.start_us = t0;
    return inject_ddos(c, rng);
  });

  write_pcap_file(out, sessions_to_packets(sessions));
  std::cout << "wrote " << out << " (" << sessions.size() << " sessions)\n";
  if (args.has("netflow")) {
    const std::string csv = args.get("netflow", "flows.csv");
    save_netflow_csv_file(sessions_to_netflow(sessions), csv);
    std::cout << "wrote " << csv << "\n";
  }
  return 0;
}

int cmd_seed(const Args& args) {
  const std::string in = args.get("in", "");
  const std::string out = args.get("out", "seed.bin");
  CSB_CHECK_MSG(!in.empty(), "seed requires --in=<capture.pcap|flows.csv>");
  const auto flows = load_flows(in);
  const PropertyGraph graph = graph_from_netflow(flows);
  save_binary_file(graph, out);
  std::cout << in << ": " << flows.size() << " flows -> " << out << " ("
            << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges)\n";
  if (args.has("profile")) {
    const std::string profile_path = args.get("profile", "seed.profile");
    SeedProfile::analyze(graph).save_file(profile_path);
    std::cout << "wrote " << profile_path << " (fitted distributions)\n";
  }
  return 0;
}

int cmd_generate(const Args& args) {
  const std::string seed_path = args.get("seed", "");
  const std::string out = args.get("out", "synthetic.bin");
  CSB_CHECK_MSG(!seed_path.empty(), "generate requires --seed=<seed.bin>");
  const PropertyGraph seed_graph = load_binary_file(seed_path);
  // A cached profile skips the Fig. 1 analysis step.
  const SeedProfile profile =
      args.has("profile") ? SeedProfile::load_file(args.get("profile", ""))
                          : SeedProfile::analyze(seed_graph);
  const std::uint64_t edges =
      args.get_u64("edges", 10 * seed_graph.num_edges());

  ClusterSim cluster(ClusterConfig{
      .nodes = args.get_u64("nodes", 8),
      .cores_per_node = args.get_u64("cores", 4),
  });
  const std::string generator = args.get("generator", "pgpba");
  GenResult result;
  if (generator == "pgpba") {
    PgpbaOptions options;
    options.desired_edges = edges;
    options.fraction = args.get_double("fraction", 0.5);
    options.partitions = args.get_u64("partitions", 0);
    options.seed = args.get_u64("rng", 1);
    if (args.has("degree-mode")) {
      options.mode = PgpbaAttachMode::kDegreeSampling;
    }
    result = pgpba_generate(seed_graph, profile, cluster, options);
  } else if (generator == "pgsk") {
    PgskOptions options;
    options.desired_edges = edges;
    options.partitions = args.get_u64("partitions", 0);
    options.seed = args.get_u64("rng", 1);
    result = pgsk_generate(seed_graph, profile, cluster, options);
  } else {
    std::cerr << "unknown --generator=" << generator
              << " (expected pgpba or pgsk)\n";
    return 2;
  }

  save_binary_file(result.graph, out);
  std::cout << generator << ": " << result.graph.num_edges() << " edges, "
            << result.graph.num_vertices() << " vertices ("
            << human_bytes(result.graph.memory_bytes()) << ", "
            << result.iterations << " iterations, "
            << result.metrics.simulated_seconds << " simulated s on "
            << cluster.config().nodes << "x"
            << cluster.config().cores_per_node << " virtual cores) -> "
            << out << "\n";
  if (args.has("graphml")) {
    std::ofstream xml(args.get("graphml", ""));
    save_graphml(result.graph, xml);
    std::cout << "wrote " << args.get("graphml", "") << "\n";
  }
  if (args.has("csv")) {
    std::ofstream csv(args.get("csv", ""));
    save_csv(result.graph, csv);
    std::cout << "wrote " << args.get("csv", "") << "\n";
  }
  return 0;
}

int cmd_veracity(const Args& args) {
  const std::string seed_path = args.get("seed", "");
  const std::string synth_path = args.get("synthetic", "");
  CSB_CHECK_MSG(!seed_path.empty() && !synth_path.empty(),
                "veracity requires --seed and --synthetic");
  const PropertyGraph seed = load_binary_file(seed_path);
  const PropertyGraph synth = load_binary_file(synth_path);
  ThreadPool pool(4);
  const VeracityReport report = evaluate_veracity(seed, synth, pool);
  std::cout << "degree veracity score:   " << sci(report.degree_score)
            << "\npagerank veracity score: " << sci(report.pagerank_score)
            << "\n(lower = more faithful to the seed)\n";
  return 0;
}

int cmd_detect(const Args& args) {
  const std::string in = args.get("in", "");
  CSB_CHECK_MSG(!in.empty(), "detect requires --in=<flows.csv|capture.pcap>");
  const auto flows = load_flows(in);

  DetectionThresholds thresholds;
  if (args.has("baseline")) {
    const auto baseline = load_flows(args.get("baseline", ""));
    thresholds = calibrate_thresholds(
        baseline, CalibrationOptions{.quantile = 0.995, .margin = 2.5});
    std::cout << "calibrated on " << baseline.size() << " baseline flows\n";
  } else {
    std::cout << "using default Table-I-style thresholds (pass --baseline "
                 "to calibrate)\n";
  }

  std::vector<Alarm> alarms;
  const std::uint64_t window_s = args.get_u64("window-s", 0);
  if (window_s > 0) {
    StreamingDetector detector(thresholds,
                               StreamingOptions{.window_us = window_s * 1'000'000});
    auto sorted = flows;
    std::sort(sorted.begin(), sorted.end(),
              [](const NetflowRecord& a, const NetflowRecord& b) {
                return a.first_us < b.first_us;
              });
    for (const auto& record : sorted) {
      for (const auto& raised : detector.ingest(record)) {
        alarms.push_back(raised.alarm);
      }
    }
    for (const auto& raised : detector.finish()) {
      alarms.push_back(raised.alarm);
    }
    std::cout << "streaming mode: " << detector.windows_closed()
              << " windows\n";
  } else {
    alarms = AnomalyDetector(thresholds).detect(flows);
  }

  std::cout << flows.size() << " flows analyzed, " << alarms.size()
            << " alarms\n";
  for (const Alarm& alarm : alarms) {
    std::cout << "  [" << to_string(alarm.type) << "] "
              << (alarm.destination_based ? "victim " : "source ")
              << ip_to_string(alarm.detection_ip) << " ("
              << to_string(alarm.protocol) << ")\n";
  }
  return 0;
}

/// Loads a graph by extension: .graphml via the GraphML importer,
/// anything else as a csb binary graph.
PropertyGraph load_graph(const std::string& path) {
  if (path.size() > 8 && path.substr(path.size() - 8) == ".graphml") {
    std::ifstream in(path);
    CSB_CHECK_MSG(in.is_open(), "cannot open for reading: " << path);
    return load_graphml(in);
  }
  return load_binary_file(path);
}

int cmd_info(const Args& args) {
  const std::string in = args.get("in", "");
  CSB_CHECK_MSG(!in.empty(), "info requires --in=<graph.bin|graph.graphml>");
  const PropertyGraph graph = load_graph(in);
  const auto degrees = total_degrees(graph);
  std::uint64_t max_degree = 0;
  for (const auto d : degrees) max_degree = std::max(max_degree, d);
  std::cout << in << ":\n  vertices:    " << with_commas(graph.num_vertices())
            << "\n  edges:       " << with_commas(graph.num_edges())
            << "\n  properties:  " << (graph.has_properties() ? "yes" : "no")
            << "\n  components:  " << with_commas(count_components(graph))
            << "\n  max degree:  " << with_commas(max_degree)
            << "\n  mean degree: "
            << (graph.num_vertices()
                    ? 2.0 * static_cast<double>(graph.num_edges()) /
                          static_cast<double>(graph.num_vertices())
                    : 0.0)
            << "\n  memory:      " << human_bytes(graph.memory_bytes())
            << "\n";
  return 0;
}

int cmd_analyze(const Args& args) {
  const std::string in = args.get("in", "");
  CSB_CHECK_MSG(!in.empty(), "analyze requires --in=<graph.bin|graph.graphml>");
  const PropertyGraph graph = load_graph(in);
  CSB_CHECK_MSG(graph.num_vertices() > 0, "graph has no vertices");
  const std::size_t top = args.get_u64("top", 10);
  ThreadPool pool(4);

  std::cout << in << ": " << with_commas(graph.num_vertices())
            << " vertices, " << with_commas(graph.num_edges()) << " edges\n";

  // Degree structure.
  const auto degrees = total_degrees(graph);
  std::vector<double> degree_samples(degrees.begin(), degrees.end());
  try {
    const PowerLawFit fit = fit_power_law(degree_samples);
    std::cout << "degree power law: alpha=" << fit.alpha
              << " xmin=" << fit.xmin << " ks=" << fit.ks << " (tail "
              << fit.tail_n << " vertices)\n";
  } catch (const CsbError&) {
    std::cout << "degree power law: no viable fit (degenerate degrees)\n";
  }
  std::cout << "assortativity: " << degree_assortativity(graph) << "\n";

  // Cohesion.
  std::cout << "weak components:   " << with_commas(count_components(graph))
            << "\nstrong components: "
            << with_commas(count_strong_components(graph)) << "\n";
  std::cout << "triangles: " << with_commas(triangle_count(graph))
            << ", clustering coefficient: "
            << global_clustering_coefficient(graph) << "\n";
  const auto cores = core_numbers(graph);
  std::cout << "max k-core: "
            << *std::max_element(cores.begin(), cores.end()) << "\n";

  // Centrality top-k.
  const auto print_topk = [&](const char* name,
                              const std::vector<double>& scores) {
    std::vector<VertexId> order(scores.size());
    for (VertexId v = 0; v < order.size(); ++v) order[v] = v;
    const std::size_t k = std::min(top, order.size());
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&scores](VertexId a, VertexId b) {
                        return scores[a] > scores[b];
                      });
    std::cout << name << " top-" << k << ":";
    for (std::size_t i = 0; i < k; ++i) {
      std::cout << " " << order[i] << "(" << sci(scores[order[i]], 3) << ")";
    }
    std::cout << "\n";
  };
  print_topk("pagerank", pagerank(graph, pool).scores);
  if (graph.has_properties()) {
    print_topk("pagerank (byte-weighted)",
               pagerank_by_traffic(graph, pool).scores);
  }
  BetweennessOptions bc_options;
  bc_options.sample_sources = args.get_u64("betweenness-samples", 256);
  print_topk("betweenness", betweenness_centrality(graph, pool, bc_options));
  return 0;
}

int cmd_workload(const Args& args) {
  const std::string in = args.get("in", "");
  CSB_CHECK_MSG(!in.empty(), "workload requires --in=<graph.bin|graph.graphml>");
  const PropertyGraph graph = load_graph(in);
  const GraphQueryEngine engine(graph);
  WorkloadOptions options;
  options.queries = args.get_u64("queries", 10'000);
  options.threads = args.get_u64("threads", 2);
  options.seed = args.get_u64("rng", 1);
  const WorkloadResult result = run_workload(engine, options);
  std::cout << in << ": " << result.total_queries << " queries in "
            << result.wall_seconds << " s ("
            << static_cast<std::uint64_t>(result.queries_per_second())
            << " q/s), checksum " << result.checksum << "\n";
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    std::cout << "  " << to_string(static_cast<QueryClass>(c)) << ": "
              << result.per_class[c] << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "trace") return cmd_trace(args);
    if (command == "seed") return cmd_seed(args);
    if (command == "generate") return cmd_generate(args);
    if (command == "veracity") return cmd_veracity(args);
    if (command == "detect") return cmd_detect(args);
    if (command == "info") return cmd_info(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "workload") return cmd_workload(args);
    if (command == "help" || command == "--help") {
      print_usage();
      return 0;
    }
  } catch (const std::exception& error) {
    std::cerr << "csbgen " << command << ": " << error.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << command << "\n";
  print_usage();
  return 2;
}
