// csblint — determinism & concurrency static analysis for the csb tree.
//
// Enforces the repo's byte-identical-parallelism contract as typed lint
// rules (docs/static-analysis.md): banned nondeterminism sources, unordered
// container iteration in determinism-critical modules, raw parallel
// floating-point reductions, span-name grammar, and banned C functions.
//
// Usage:
//   csblint [--root=DIR] [--rules=a,b] [--compile-commands=FILE] [path...]
//   csblint --list-rules
//
// Positional paths are files or directories (directories recurse over
// .cpp/.cc/.cxx/.hpp/.h, sorted, so output order is stable). Exit status:
// 0 clean, 1 unsuppressed findings, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "util/error.hpp"

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kUsage =
    "usage: csblint [--root=DIR] [--rules=a,b] [--compile-commands=FILE]\n"
    "               [path...]\n"
    "       csblint --list-rules\n";

bool has_cpp_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

/// Expands files/directories into a sorted, deduplicated file list.
std::vector<std::string> expand_paths(const std::vector<std::string>& paths) {
  std::set<std::string> files;
  for (const std::string& arg : paths) {
    const fs::path p(arg);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
          files.insert(entry.path().lexically_normal().generic_string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.insert(p.lexically_normal().generic_string());
    } else {
      throw csb::CsbError("no such file or directory: " + arg);
    }
  }
  return {files.begin(), files.end()};
}

/// Root-relative display/scoping path with '/' separators.
std::string relativize(const std::string& file, const fs::path& root) {
  const fs::path abs = fs::absolute(file).lexically_normal();
  const fs::path rel = abs.lexically_relative(
      fs::absolute(root).lexically_normal());
  if (rel.empty() || rel.native().rfind("..", 0) == 0) {
    return abs.generic_string();
  }
  return rel.generic_string();
}

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string root = ".";
    std::string compile_commands;
    csb::lint::LintOptions options;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--list-rules") {
        std::cout << csb::lint::list_rules_text();
        return 0;
      }
      if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      }
      if (arg.rfind("--root=", 0) == 0) {
        root = arg.substr(7);
      } else if (arg.rfind("--rules=", 0) == 0) {
        options.rules = split_csv(arg.substr(8));
      } else if (arg.rfind("--compile-commands=", 0) == 0) {
        compile_commands = arg.substr(19);
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "csblint: unknown flag " << arg << "\n" << kUsage;
        return 2;
      } else {
        paths.push_back(arg);
      }
    }

    std::vector<std::string> files = expand_paths(paths);
    if (!compile_commands.empty()) {
      for (const std::string& file :
           csb::lint::load_compile_commands(compile_commands)) {
        files.push_back(file);
      }
      std::sort(files.begin(), files.end());
      files.erase(std::unique(files.begin(), files.end()), files.end());
    }
    if (files.empty()) {
      std::cerr << "csblint: no input files\n" << kUsage;
      return 2;
    }

    csb::lint::Linter linter(options);
    for (const std::string& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in.good()) throw csb::CsbError("cannot read " + file);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      linter.add_file(relativize(file, root), buffer.str());
    }

    const csb::lint::LintResult result = linter.run();
    for (const csb::lint::Diagnostic& d : result.diagnostics) {
      std::cout << d.file << ":" << d.line << ": "
                << csb::lint::severity_name(d.severity) << ": " << d.message
                << " [" << d.rule << "]\n";
    }
    if (result.diagnostics.empty()) {
      std::cout << "csblint: clean (" << result.files_linted << " files, "
                << result.suppressed_count << " suppressed)\n";
      return 0;
    }
    std::cout << "csblint: " << result.diagnostics.size()
              << " finding(s) in " << result.files_linted << " files ("
              << result.suppressed_count << " suppressed)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "csblint: " << e.what() << "\n";
    return 2;
  }
}
