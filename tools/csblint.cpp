// csblint — determinism & concurrency static analysis for the csb tree.
//
// Enforces the repo's byte-identical-parallelism contract as typed lint
// rules (docs/static-analysis.md): banned nondeterminism sources, unordered
// container iteration in determinism-critical modules, raw parallel
// floating-point reductions, span-name grammar and balance, resource-safety
// rules (syscall results, lock discipline, detached threads, RNG stream
// reuse), and banned C functions.
//
// Usage:
//   csblint [--root=DIR] [--rules=a,b] [--compile-commands=FILE]
//           [--jobs=N] [--format=text|sarif] [--baseline=FILE]
//           [--write-baseline=FILE] [--changed-only] [path...]
//   csblint --list-rules
//
// Positional paths are files or directories (directories recurse over
// .cpp/.cc/.cxx/.hpp/.h, sorted, so output order is stable; directories
// named `data` are skipped — test fixtures contain deliberate violations).
// --changed-only keeps only files git reports as modified or untracked
// relative to HEAD. --baseline subtracts a checked-in file:line:rule list;
// --write-baseline regenerates that list from the current findings.
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage or I/O error.
#include <cstdio>
#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "util/error.hpp"

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kUsage =
    "usage: csblint [--root=DIR] [--rules=a,b] [--compile-commands=FILE]\n"
    "               [--jobs=N] [--format=text|sarif] [--baseline=FILE]\n"
    "               [--write-baseline=FILE] [--changed-only] [path...]\n"
    "       csblint --list-rules\n";

bool has_cpp_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

/// Expands files/directories into a sorted, deduplicated file list.
/// Directories named `data` are pruned: tests/data/** holds lint fixtures
/// whose violations are the fixtures' point.
std::vector<std::string> expand_paths(const std::vector<std::string>& paths) {
  std::set<std::string> files;
  for (const std::string& arg : paths) {
    const fs::path p(arg);
    if (fs::is_directory(p)) {
      auto it = fs::recursive_directory_iterator(p);
      const auto end = fs::recursive_directory_iterator();
      for (; it != end; ++it) {
        if (it->is_directory() && it->path().filename() == "data") {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && has_cpp_extension(it->path())) {
          files.insert(it->path().lexically_normal().generic_string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.insert(p.lexically_normal().generic_string());
    } else {
      throw csb::CsbError("no such file or directory: " + arg);
    }
  }
  return {files.begin(), files.end()};
}

/// Root-relative display/scoping path with '/' separators.
std::string relativize(const std::string& file, const fs::path& root) {
  const fs::path abs = fs::absolute(file).lexically_normal();
  const fs::path rel = abs.lexically_relative(
      fs::absolute(root).lexically_normal());
  if (rel.empty() || rel.native().rfind("..", 0) == 0) {
    return abs.generic_string();
  }
  return rel.generic_string();
}

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Root-relative paths git reports as changed vs HEAD (modified, staged,
/// or untracked-and-not-ignored).
std::set<std::string> git_changed_files(const std::string& root) {
  std::set<std::string> changed;
  const std::array<std::string, 2> commands = {
      "git -C \"" + root + "\" diff --name-only HEAD",
      "git -C \"" + root + "\" ls-files --others --exclude-standard"};
  for (const std::string& command : commands) {
    FILE* pipe = popen(command.c_str(), "r");
    if (pipe == nullptr) {
      throw csb::CsbError("--changed-only: cannot run: " + command);
    }
    std::string out;
    std::array<char, 4096> buffer{};
    std::size_t got = 0;
    while ((got = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
      out.append(buffer.data(), got);
    }
    const int status = pclose(pipe);
    if (status != 0) {
      throw csb::CsbError("--changed-only: git failed (is " + root +
                          " a git checkout?): " + command);
    }
    std::stringstream lines(out);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) changed.insert(line);
    }
  }
  return changed;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string root = ".";
    std::string compile_commands;
    std::string format = "text";
    std::string baseline_path;
    std::string write_baseline_path;
    bool changed_only = false;
    csb::lint::LintOptions options;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--list-rules") {
        std::cout << csb::lint::list_rules_text();
        return 0;
      }
      if (arg == "--help" || arg == "-h") {
        std::cout << kUsage;
        return 0;
      }
      if (arg.rfind("--root=", 0) == 0) {
        root = arg.substr(7);
      } else if (arg.rfind("--rules=", 0) == 0) {
        options.rules = split_csv(arg.substr(8));
      } else if (arg.rfind("--compile-commands=", 0) == 0) {
        compile_commands = arg.substr(19);
      } else if (arg.rfind("--jobs=", 0) == 0) {
        options.jobs = static_cast<std::size_t>(
            std::stoul(arg.substr(7)));
      } else if (arg.rfind("--format=", 0) == 0) {
        format = arg.substr(9);
        if (format != "text" && format != "sarif") {
          std::cerr << "csblint: unknown format '" << format << "'\n"
                    << kUsage;
          return 2;
        }
      } else if (arg.rfind("--baseline=", 0) == 0) {
        baseline_path = arg.substr(11);
      } else if (arg.rfind("--write-baseline=", 0) == 0) {
        write_baseline_path = arg.substr(17);
      } else if (arg == "--changed-only") {
        changed_only = true;
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "csblint: unknown flag " << arg << "\n" << kUsage;
        return 2;
      } else {
        paths.push_back(arg);
      }
    }

    std::vector<std::string> files = expand_paths(paths);
    if (!compile_commands.empty()) {
      for (const std::string& file :
           csb::lint::load_compile_commands(compile_commands)) {
        files.push_back(file);
      }
      std::sort(files.begin(), files.end());
      files.erase(std::unique(files.begin(), files.end()), files.end());
    }
    if (files.empty()) {
      std::cerr << "csblint: no input files\n" << kUsage;
      return 2;
    }

    // (absolute-ish path on disk, root-relative scoping path) pairs.
    std::vector<std::pair<std::string, std::string>> inputs;
    inputs.reserve(files.size());
    for (const std::string& file : files) {
      inputs.emplace_back(file, relativize(file, root));
    }
    if (changed_only) {
      const std::set<std::string> changed = git_changed_files(root);
      std::erase_if(inputs, [&](const auto& input) {
        return changed.count(input.second) == 0;
      });
      if (inputs.empty()) {
        if (format == "sarif") {
          std::cout << csb::lint::to_sarif(csb::lint::LintResult{});
        } else {
          std::cout << "csblint: clean (0 changed files)\n";
        }
        return 0;
      }
    }

    csb::lint::Linter linter(options);
    for (const auto& [file, rel] : inputs) {
      std::ifstream in(file, std::ios::binary);
      if (!in.good()) throw csb::CsbError("cannot read " + file);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      linter.add_file(rel, buffer.str());
    }

    csb::lint::LintResult result = linter.run();
    if (!write_baseline_path.empty()) {
      std::ofstream out(write_baseline_path, std::ios::binary);
      if (!out.good()) {
        throw csb::CsbError("cannot write " + write_baseline_path);
      }
      out << csb::lint::baseline_text(result);
      std::cout << "csblint: wrote " << result.diagnostics.size()
                << " finding(s) to " << write_baseline_path << "\n";
      return 0;
    }
    if (!baseline_path.empty()) {
      csb::lint::apply_baseline(result,
                                csb::lint::load_baseline(baseline_path));
    }

    if (format == "sarif") {
      std::cout << csb::lint::to_sarif(result);
      return result.diagnostics.empty() ? 0 : 1;
    }
    for (const csb::lint::Diagnostic& d : result.diagnostics) {
      std::cout << d.file << ":" << d.line << ": "
                << csb::lint::severity_name(d.severity) << ": " << d.message
                << " [" << d.rule << "]\n";
    }
    const std::string tail =
        std::to_string(result.suppressed_count) + " suppressed, " +
        std::to_string(result.baselined_count) + " baselined)";
    if (result.diagnostics.empty()) {
      std::cout << "csblint: clean (" << result.files_linted << " files, "
                << tail << "\n";
      return 0;
    }
    std::cout << "csblint: " << result.diagnostics.size()
              << " finding(s) in " << result.files_linted << " files ("
              << tail << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "csblint: " << e.what() << "\n";
    return 2;
  }
}
